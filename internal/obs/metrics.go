package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// Registry and exposition
// ---------------------------------------------------------------------

// Desc describes one metric family: its name, HELP text, TYPE and
// label names (in exposition order).
type Desc struct {
	Name   string
	Help   string
	Type   string // "counter", "gauge", "histogram"
	Labels []string
}

// Collector is anything a Registry can render: it describes one family
// and emits its current series. Histogram-shaped collectors implement
// histCollector instead of emitting through Collect.
type Collector interface {
	Describe() Desc
	Collect(emit func(labelValues []string, value float64))
}

// histCollector is the histogram-shaped extension of Collector.
type histCollector interface {
	CollectHist(emit func(labelValues []string, bounds []float64, buckets []uint64, count uint64, sum float64))
}

// Registry holds an ordered set of collectors and renders them in
// Prometheus text exposition format. Registration order is exposition
// order, so output is deterministic.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	names      map[string]bool
}

func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

// MustRegister adds collectors, panicking on a duplicate family name —
// duplicate families are invalid exposition, so this is a programming
// error worth failing fast on.
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		d := c.Describe()
		if r.names[d.Name] {
			panic("obs: duplicate metric family " + d.Name)
		}
		r.names[d.Name] = true
		r.collectors = append(r.collectors, c)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders every registered family with its # HELP and
// # TYPE header in Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var b strings.Builder
	for _, c := range collectors {
		d := c.Describe()
		fmt.Fprintf(&b, "# HELP %s %s\n", d.Name, escapeHelp(d.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", d.Name, d.Type)
		if h, ok := c.(histCollector); ok {
			h.CollectHist(func(lv []string, bounds []float64, buckets []uint64, count uint64, sum float64) {
				cum := uint64(0)
				for i, bound := range bounds {
					cum += buckets[i]
					b.WriteString(d.Name)
					b.WriteString("_bucket")
					writeLabels(&b, d.Labels, lv, "le", formatValue(bound))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += buckets[len(bounds)]
				b.WriteString(d.Name)
				b.WriteString("_bucket")
				writeLabels(&b, d.Labels, lv, "le", "+Inf")
				fmt.Fprintf(&b, " %d\n", cum)
				b.WriteString(d.Name)
				b.WriteString("_sum")
				writeLabels(&b, d.Labels, lv, "", "")
				fmt.Fprintf(&b, " %s\n", formatValue(sum))
				b.WriteString(d.Name)
				b.WriteString("_count")
				writeLabels(&b, d.Labels, lv, "", "")
				fmt.Fprintf(&b, " %d\n", count)
			})
			continue
		}
		c.Collect(func(lv []string, v float64) {
			b.WriteString(d.Name)
			writeLabels(&b, d.Labels, lv, "", "")
			b.WriteByte(' ')
			b.WriteString(formatValue(v))
			b.WriteByte('\n')
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

// Counter is a lock-free monotone integer counter.
type Counter struct {
	d Desc
	v atomic.Uint64
}

func NewCounter(name, help string) *Counter {
	return &Counter{d: Desc{Name: name, Help: help, Type: "counter"}}
}

func (c *Counter) Inc()           { c.v.Add(1) }
func (c *Counter) Add(n uint64)   { c.v.Add(n) }
func (c *Counter) Value() uint64  { return c.v.Load() }
func (c *Counter) Describe() Desc { return c.d }
func (c *Counter) Collect(emit func([]string, float64)) {
	emit(nil, float64(c.v.Load()))
}

// CounterVec is a family of counters distinguished by label values.
// Series creation takes a write lock once; subsequent lookups are
// read-locked map hits. Callers on hot paths should cache the *Counter
// returned by With.
type CounterVec struct {
	d     Desc
	mu    sync.RWMutex
	elems map[string]*vecCounter
	order []string
}

type vecCounter struct {
	labels []string
	v      atomic.Uint64
}

func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{
		d:     Desc{Name: name, Help: help, Type: "counter", Labels: labels},
		elems: make(map[string]*vecCounter),
	}
}

func vecKey(values []string) string { return strings.Join(values, "\x00") }

func (v *CounterVec) with(values []string) *vecCounter {
	if len(values) != len(v.d.Labels) {
		panic("obs: label cardinality mismatch for " + v.d.Name)
	}
	k := vecKey(values)
	v.mu.RLock()
	e := v.elems[k]
	v.mu.RUnlock()
	if e != nil {
		return e
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e = v.elems[k]; e != nil {
		return e
	}
	e = &vecCounter{labels: append([]string(nil), values...)}
	v.elems[k] = e
	v.order = append(v.order, k)
	return e
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *VecCounter {
	return &VecCounter{v.with(values)}
}

// VecCounter is one series of a CounterVec.
type VecCounter struct{ e *vecCounter }

func (c *VecCounter) Inc()          { c.e.v.Add(1) }
func (c *VecCounter) Add(n uint64)  { c.e.v.Add(n) }
func (c *VecCounter) Value() uint64 { return c.e.v.Load() }

func (v *CounterVec) Describe() Desc { return v.d }
func (v *CounterVec) Collect(emit func([]string, float64)) {
	v.mu.RLock()
	order := append([]string(nil), v.order...)
	elems := make([]*vecCounter, len(order))
	for i, k := range order {
		elems[i] = v.elems[k]
	}
	v.mu.RUnlock()
	for _, e := range elems {
		emit(e.labels, float64(e.v.Load()))
	}
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

// Gauge is a lock-free float gauge.
type Gauge struct {
	d    Desc
	bits atomic.Uint64
}

func NewGauge(name, help string) *Gauge {
	return &Gauge{d: Desc{Name: name, Help: help, Type: "gauge"}}
}

func (g *Gauge) Set(v float64)  { g.bits.Store(math.Float64bits(v)) }
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}
func (g *Gauge) Describe() Desc { return g.d }
func (g *Gauge) Collect(emit func([]string, float64)) {
	emit(nil, g.Value())
}

// Func adapts an arbitrary read function into a Collector — the bridge
// for exporting state that already lives in application atomics
// (server counters, cache sizes, WAL stats).
type Func struct {
	D  Desc
	Fn func(emit func(labelValues []string, value float64))
}

func (f Func) Describe() Desc                       { return f.D }
func (f Func) Collect(emit func([]string, float64)) { f.Fn(emit) }

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// Histogram is a fixed-bucket lock-free histogram: Observe does a
// short linear scan over the bounds plus three atomic updates, no
// locks, no allocation.
type Histogram struct {
	d      Desc
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// LatencyBuckets spans 50µs .. 5s — HTTP request latencies.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// PhaseBuckets spans 1µs .. 2.5s — engine phase and WAL fsync
// durations, which start far below HTTP latencies.
var PhaseBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 2.5,
}

// NewHistogram builds a histogram with the given upper bounds, which
// must be sorted ascending (the +Inf bucket is implicit).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{
		d:      Desc{Name: name, Help: help, Type: "histogram"},
		bounds: append([]float64(nil), bounds...),
	}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	// The total count is the sum of the buckets, computed at collect
	// time — observing costs one counter bump plus the sum CAS, not
	// three read-modify-writes.
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) Describe() Desc                  { return h.d }
func (h *Histogram) Collect(func([]string, float64)) {} // rendered via CollectHist
func (h *Histogram) CollectHist(emit func([]string, []float64, []uint64, uint64, float64)) {
	buckets := make([]uint64, len(h.counts))
	var count uint64
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	emit(nil, h.bounds, buckets, count, math.Float64frombits(h.sum.Load()))
}

// HistogramVec is a family of histograms distinguished by label
// values. As with CounterVec, hot paths should cache the *Histogram
// from With.
type HistogramVec struct {
	d      Desc
	bounds []float64
	mu     sync.RWMutex
	elems  map[string]*vecHist
	order  []string
}

type vecHist struct {
	labels []string
	h      *Histogram
}

func NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{
		d:      Desc{Name: name, Help: help, Type: "histogram", Labels: labels},
		bounds: append([]float64(nil), bounds...),
		elems:  make(map[string]*vecHist),
	}
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.d.Labels) {
		panic("obs: label cardinality mismatch for " + v.d.Name)
	}
	k := vecKey(values)
	v.mu.RLock()
	e := v.elems[k]
	v.mu.RUnlock()
	if e != nil {
		return e.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e = v.elems[k]; e != nil {
		return e.h
	}
	e = &vecHist{
		labels: append([]string(nil), values...),
		h:      NewHistogram(v.d.Name, v.d.Help, v.bounds),
	}
	v.elems[k] = e
	v.order = append(v.order, k)
	return e.h
}

func (v *HistogramVec) Describe() Desc                  { return v.d }
func (v *HistogramVec) Collect(func([]string, float64)) {}
func (v *HistogramVec) CollectHist(emit func([]string, []float64, []uint64, uint64, float64)) {
	v.mu.RLock()
	elems := make([]*vecHist, 0, len(v.order))
	for _, k := range v.order {
		elems = append(elems, v.elems[k])
	}
	v.mu.RUnlock()
	for _, e := range elems {
		e.h.CollectHist(func(_ []string, bounds []float64, buckets []uint64, count uint64, sum float64) {
			emit(e.labels, bounds, buckets, count, sum)
		})
	}
}

// SortedLabelDump returns "name{k=v,...} value" lines for tests that
// want order-independent series comparison.
func SortedLabelDump(r *Registry) []string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	var out []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}
