package circuit

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// VCDOptions configures waveform export.
type VCDOptions struct {
	// TicksPerUnit scales simulation time to integer VCD ticks
	// (default 1; use e.g. 1000 for sub-unit delays).
	TicksPerUnit float64
	// Timescale is the VCD timescale declaration (default "1ns").
	Timescale string
}

// WriteVCD exports a timed simulation as a Value Change Dump, the
// interchange format every waveform viewer reads. Signals dump their
// initial levels at time zero and every recorded transition afterwards.
func (r *SimResult) WriteVCD(w io.Writer, opts VCDOptions) error {
	scale := opts.TicksPerUnit
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return fmt.Errorf("circuit: negative TicksPerUnit %g", scale)
	}
	timescale := opts.Timescale
	if timescale == "" {
		timescale = "1ns"
	}
	c := r.c
	var b strings.Builder
	b.WriteString("$comment tsg timed simulation $end\n")
	fmt.Fprintf(&b, "$timescale %s $end\n", timescale)
	fmt.Fprintf(&b, "$scope module %s $end\n", sanitizeVCDWord(c.Name()))
	code := func(s SignalID) string { return vcdID(int(s)) }
	for i := 0; i < c.NumSignals(); i++ {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n",
			code(SignalID(i)), sanitizeVCDWord(c.Signal(SignalID(i)).Name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	b.WriteString("$dumpvars\n")
	for i := 0; i < c.NumSignals(); i++ {
		fmt.Fprintf(&b, "%s%s\n", c.Signal(SignalID(i)).Initial, code(SignalID(i)))
	}
	b.WriteString("$end\n")

	// Group transitions by tick, in time order.
	type change struct {
		tick   int64
		signal SignalID
		level  Level
	}
	changes := make([]change, 0, len(r.Transitions))
	for _, tr := range r.Transitions {
		tick := int64(math.Round(tr.Time * scale))
		changes = append(changes, change{tick: tick, signal: tr.Signal, level: tr.Level})
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].tick < changes[j].tick })
	last := int64(-1)
	for _, ch := range changes {
		if ch.tick != last {
			fmt.Fprintf(&b, "#%d\n", ch.tick)
			last = ch.tick
		}
		fmt.Fprintf(&b, "%s%s\n", ch.level, code(ch.signal))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// vcdID maps an index to a short printable identifier (base-94 over
// '!'..'~').
func vcdID(i int) string {
	const base = 94
	var out []byte
	for {
		out = append(out, byte('!'+i%base))
		i /= base
		if i == 0 {
			break
		}
	}
	return string(out)
}

func sanitizeVCDWord(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
