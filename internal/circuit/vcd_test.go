package circuit_test

import (
	"strings"
	"testing"

	"tsg/internal/circuit"
	"tsg/internal/gen"
)

func TestWriteVCD(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	res, err := circuit.Simulate(c, circuit.SimOptions{Inputs: script, MaxTransitions: 8})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var sb strings.Builder
	if err := res.WriteVCD(&sb, circuit.VCDOptions{}); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module oscillator $end",
		"$var wire 1",
		"$dumpvars",
		"$enddefinitions $end",
		"#0", "#2", "#3", "#6", // e-, a+, f-, c+ ticks
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The header declares every signal exactly once.
	if got := strings.Count(out, "$var wire 1 "); got != c.NumSignals() {
		t.Errorf("VCD declares %d signals, want %d", got, c.NumSignals())
	}
	// Value changes for 8 transitions plus 5 initial dumps.
	changes := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) >= 2 && (line[0] == '0' || line[0] == '1') {
			changes++
		}
	}
	if changes != 8+c.NumSignals() {
		t.Errorf("VCD has %d value changes, want %d", changes, 8+c.NumSignals())
	}
}

func TestWriteVCDScaling(t *testing.T) {
	c, err := circuit.NewBuilder("half").
		Input("p", circuit.Low).
		Gate(circuit.Buf, "y", []string{"p"}, 0.5).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{{Signal: "p", Time: 0, Level: circuit.High}},
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var sb strings.Builder
	if err := res.WriteVCD(&sb, circuit.VCDOptions{TicksPerUnit: 10, Timescale: "100ps"}); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "$timescale 100ps $end") {
		t.Errorf("custom timescale missing:\n%s", out)
	}
	if !strings.Contains(out, "#5") { // 0.5 time units x 10 ticks
		t.Errorf("scaled tick #5 missing:\n%s", out)
	}
	if err := res.WriteVCD(&sb, circuit.VCDOptions{TicksPerUnit: -1}); err == nil {
		t.Error("negative TicksPerUnit accepted")
	}
}
