package circuit_test

import (
	"strings"
	"testing"

	"tsg/internal/circuit"
	"tsg/internal/gen"
)

func TestOscillatorCircuitStructure(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	if c.NumSignals() != 5 {
		t.Errorf("NumSignals = %d, want 5 (a b c e f)", c.NumSignals())
	}
	if c.NumGates() != 4 {
		t.Errorf("NumGates = %d, want 4 (C + 2 NOR + BUF)", c.NumGates())
	}
	if len(script) != 1 || script[0].Signal != "e" {
		t.Errorf("input script = %v, want single e- transition", script)
	}
	if !c.InitiallyStable() {
		t.Error("oscillator circuit not quiescent before the input falls")
	}
	e := c.MustSignal("e")
	if sig := c.Signal(e); !sig.IsInput || sig.Initial != circuit.High {
		t.Errorf("signal e = %+v, want input initially high", sig)
	}
	if sig := c.Signal(c.MustSignal("f")); sig.Initial != circuit.High {
		t.Errorf("signal f initial = %v, want 1 (Fig. 1 caption)", sig.Initial)
	}
	// Fanout of c: gates a and b read it.
	names := map[string]bool{}
	for _, gi := range c.Fanout(c.MustSignal("c")) {
		names[c.Gate(gi).Name] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("fanout of c = %v, want gates a and b", names)
	}
}

// TestOscillatorTimedSim verifies the timed event-driven simulation of
// the Fig. 1a circuit against the timing-simulation table of Example 3:
// the gate-level simulator and the Signal Graph MAX rule must produce
// identical occurrence times.
func TestOscillatorTimedSim(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	res, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs:         script,
		MaxTransitions: 60,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Hazards) != 0 {
		t.Fatalf("hazards in a distributive circuit: %v", res.Hazards)
	}
	want := map[string][]float64{
		"e": {0},
		"f": {3},
		"a": {2, 8, 13, 18, 23}, // a+0 a-0 a+1 a-1 a+2 (Example 3 + Fig. 1c)
		"b": {4, 7, 12, 17, 22},
		"c": {6, 11, 16, 21, 26},
	}
	for name, times := range want {
		got := res.Times(c.MustSignal(name))
		if len(got) < len(times) {
			t.Fatalf("signal %s: %d transitions, want >= %d (got %v)", name, len(got), len(times), got)
		}
		for i, w := range times {
			if got[i] != w {
				t.Errorf("signal %s transition %d at t=%g, want %g (Example 3)", name, i, got[i], w)
			}
		}
	}
	// Steady state: c oscillates with period 10 (cycle time of §VIII.C).
	ct := res.Times(c.MustSignal("c"))
	for i := 2; i+2 < len(ct); i++ {
		if d := ct[i+2] - ct[i]; d != 10 {
			t.Errorf("c period between transitions %d and %d = %g, want 10", i, i+2, d)
		}
	}
}

func TestSimulateBounds(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	res, err := circuit.Simulate(c, circuit.SimOptions{Inputs: script, MaxTransitions: 7})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Transitions) != 7 {
		t.Errorf("transition count = %d, want exactly 7 (bounded)", len(res.Transitions))
	}
	res, err = circuit.Simulate(c, circuit.SimOptions{Inputs: script, MaxTime: 11.5})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	for _, tr := range res.Transitions {
		if tr.Time > 11.5 {
			t.Errorf("transition at %g past MaxTime", tr.Time)
		}
	}
	if got := res.Count(c.MustSignal("c")); got != 2 {
		t.Errorf("c transitions before t=11.5: %d, want 2 (at 6 and 11)", got)
	}
}

func TestSimulateInputErrors(t *testing.T) {
	c, _ := gen.OscillatorCircuit()
	if _, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{{Signal: "zz", Time: 0, Level: circuit.Low}},
	}); err == nil {
		t.Error("unknown scripted signal accepted")
	}
	if _, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{{Signal: "a", Time: 0, Level: circuit.Low}},
	}); err == nil {
		t.Error("scripting a gate output accepted")
	}
	if _, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{{Signal: "e", Time: 0, Level: circuit.High}},
	}); err == nil {
		t.Error("no-op input transition accepted")
	}
	if _, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{{Signal: "e", Time: -1, Level: circuit.Low}},
	}); err == nil {
		t.Error("negative-time input accepted")
	}
}

func TestMullerRingCircuitSim(t *testing.T) {
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		t.Fatalf("MullerRingCircuit: %v", err)
	}
	if c.NumGates() != 10 || c.NumSignals() != 10 {
		t.Errorf("ring has %d gates / %d signals, want 10/10", c.NumGates(), c.NumSignals())
	}
	res, err := circuit.Simulate(c, circuit.SimOptions{MaxTransitions: 400})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Hazards) != 0 {
		t.Fatalf("hazards in the Muller ring: %v", res.Hazards)
	}
	// §VIII.D: o1 rises at 0, 6, 13, 20, 26, 33, ... (t_{a+0}(a+i) with
	// the whole ring started at time 0).
	got := res.Times(c.MustSignal("o1"))
	// o1's transitions alternate +,-; the rises are the even positions.
	var rises []float64
	for i := 0; i < len(got); i += 2 {
		rises = append(rises, got[i])
	}
	want := []float64{0, 6, 13, 20, 26, 33, 40, 46, 53, 60, 66}
	if len(rises) < len(want) {
		t.Fatalf("only %d rises of o1 (%v), want >= %d", len(rises), rises, len(want))
	}
	for i, w := range want {
		if rises[i] != w {
			t.Errorf("o1 rise %d at t=%g, want %g (§VIII.D)", i, rises[i], w)
		}
	}
}

func TestGateEval(t *testing.T) {
	cases := []struct {
		typ     circuit.GateType
		in      []circuit.Level
		current circuit.Level
		want    circuit.Level
		forced  bool
	}{
		{circuit.CElement, []circuit.Level{1, 1}, 0, 1, true},
		{circuit.CElement, []circuit.Level{0, 0}, 1, 0, true},
		{circuit.CElement, []circuit.Level{1, 0}, 0, 0, false},
		{circuit.CElement, []circuit.Level{0, 1}, 1, 1, false},
		{circuit.Nor, []circuit.Level{0, 0}, 0, 1, true},
		{circuit.Nor, []circuit.Level{1, 0}, 1, 0, true},
		{circuit.Nand, []circuit.Level{1, 1}, 1, 0, true},
		{circuit.Nand, []circuit.Level{0, 1}, 0, 1, true},
		{circuit.And, []circuit.Level{1, 1}, 0, 1, true},
		{circuit.Or, []circuit.Level{0, 1}, 0, 1, true},
		{circuit.Inv, []circuit.Level{1}, 1, 0, true},
		{circuit.Buf, []circuit.Level{1}, 0, 1, true},
		{circuit.Xor, []circuit.Level{1, 1}, 1, 0, true},
		{circuit.Xor, []circuit.Level{1, 0}, 0, 1, true},
		{circuit.Majority, []circuit.Level{1, 1, 0}, 0, 1, true},
		{circuit.Majority, []circuit.Level{0, 0, 1}, 1, 0, true},
	}
	for _, tc := range cases {
		got, ok := tc.typ.Eval(tc.in, tc.current)
		if got != tc.want || ok != tc.forced {
			t.Errorf("%v.Eval(%v, %v) = (%v, %v), want (%v, %v)",
				tc.typ, tc.in, tc.current, got, ok, tc.want, tc.forced)
		}
	}
}

func TestGateTypeParse(t *testing.T) {
	for _, name := range []string{"C", "NOR", "NAND", "AND", "OR", "INV", "BUF", "XOR", "MAJ"} {
		typ, err := circuit.ParseGateType(name)
		if err != nil {
			t.Errorf("ParseGateType(%q): %v", name, err)
		}
		if typ.String() != name {
			t.Errorf("round-trip %q -> %v", name, typ)
		}
	}
	if _, err := circuit.ParseGateType("FOO"); err == nil {
		t.Error("ParseGateType(FOO) succeeded")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *circuit.Builder
		want string
	}{
		{
			"empty",
			circuit.NewBuilder("x"),
			"no signals",
		},
		{
			"double driver",
			circuit.NewBuilder("x").Input("i", 0).
				Gate(circuit.Inv, "a", []string{"i"}).
				Gate(circuit.Buf, "a", []string{"i"}),
			"driven by two gates",
		},
		{
			"undriven signal",
			circuit.NewBuilder("x").Gate(circuit.Inv, "a", []string{"ghost"}),
			"neither an input nor a gate output",
		},
		{
			"input collision",
			circuit.NewBuilder("x").Input("i", 0).
				Gate(circuit.Inv, "a", []string{"i"}).Input("a", 0),
			"collides",
		},
		{
			"bad arity",
			circuit.NewBuilder("x").Input("i", 0).Gate(circuit.Inv, "a", []string{"i", "i"}),
			"exactly 1 input",
		},
		{
			"bad majority",
			circuit.NewBuilder("x").Input("i", 0).Gate(circuit.Majority, "a", []string{"i", "i"}),
			"odd number",
		},
		{
			"delay count",
			circuit.NewBuilder("x").Input("i", 0).Input("j", 0).
				Gate(circuit.And, "a", []string{"i", "j"}, 1, 2, 3),
			"delays",
		},
		{
			"negative delay",
			circuit.NewBuilder("x").Input("i", 0).Gate(circuit.Inv, "a", []string{"i"}, -2),
			"negative pin delay",
		},
		{
			"unknown init",
			circuit.NewBuilder("x").Input("i", 0).Gate(circuit.Inv, "a", []string{"i"}).Init("zz", 1),
			"unknown signal",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.b.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Build() error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestHazardDetection: a pulse shorter than an AND gate's slow pin
// withdraws the excitation; the simulator must record a hazard instead
// of emitting the output change.
func TestHazardDetection(t *testing.T) {
	c, err := circuit.NewBuilder("glitch").
		Input("p", circuit.Low).
		Input("q", circuit.High).
		Gate(circuit.And, "y", []string{"p", "q"}, 5, 5).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := circuit.Simulate(c, circuit.SimOptions{
		Inputs: []circuit.InputEvent{
			{Signal: "p", Time: 1, Level: circuit.High}, // y scheduled for t=6
			{Signal: "p", Time: 2, Level: circuit.Low},  // withdrawn before firing
		},
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Hazards) != 1 {
		t.Fatalf("hazards = %v, want exactly one", res.Hazards)
	}
	if res.Hazards[0].Gate != "y" || res.Hazards[0].Time != 2 {
		t.Errorf("hazard = %+v, want gate y at t=2", res.Hazards[0])
	}
	if got := res.Count(c.MustSignal("y")); got != 0 {
		t.Errorf("y transitioned %d times despite the glitch", got)
	}
}
