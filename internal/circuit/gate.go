package circuit

import "fmt"

// GateType enumerates the supported logic elements.
type GateType int

// The gate library. CElement and Majority are state-holding (their
// output holds when inputs disagree); the rest are combinational.
const (
	CElement GateType = iota // Muller C-element: all-1 sets, all-0 resets
	Nor
	Nand
	And
	Or
	Inv
	Buf
	Xor
	Majority // strict majority of an odd number of inputs; ties hold
)

var gateNames = map[GateType]string{
	CElement: "C", Nor: "NOR", Nand: "NAND", And: "AND", Or: "OR",
	Inv: "INV", Buf: "BUF", Xor: "XOR", Majority: "MAJ",
}

// String returns the conventional gate mnemonic.
func (t GateType) String() string {
	if n, ok := gateNames[t]; ok {
		return n
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// ParseGateType maps a mnemonic ("C", "NOR", ...) to its GateType.
func ParseGateType(s string) (GateType, error) {
	for t, n := range gateNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("circuit: unknown gate type %q", s)
}

// CheckArity validates the input count for the gate type.
func (t GateType) CheckArity(n int) error {
	switch t {
	case Inv, Buf:
		if n != 1 {
			return fmt.Errorf("%s gate needs exactly 1 input, got %d", t, n)
		}
	case Majority:
		if n < 3 || n%2 == 0 {
			return fmt.Errorf("MAJ gate needs an odd number of inputs >= 3, got %d", n)
		}
	default:
		if n < 1 {
			return fmt.Errorf("%s gate needs at least 1 input", t)
		}
	}
	return nil
}

// Eval returns the target output value for the given input levels and
// the current output value. ok is false when the gate holds its state
// (C-element/majority with disagreeing inputs), in which case target
// equals current.
func (t GateType) Eval(in []Level, current Level) (target Level, ok bool) {
	switch t {
	case CElement:
		if allAt(in, High) {
			return High, true
		}
		if allAt(in, Low) {
			return Low, true
		}
		return current, false
	case Majority:
		ones := 0
		for _, l := range in {
			if l == High {
				ones++
			}
		}
		switch {
		case 2*ones > len(in):
			return High, true
		case 2*ones < len(in):
			return Low, true
		default:
			return current, false
		}
	case Nor:
		return boolLevel(allAt(in, Low)), true
	case Nand:
		return boolLevel(!allAt(in, High)), true
	case And:
		return boolLevel(allAt(in, High)), true
	case Or:
		return boolLevel(!allAt(in, Low)), true
	case Inv:
		return in[0].Toggle(), true
	case Buf:
		return in[0], true
	case Xor:
		var acc Level
		for _, l := range in {
			acc ^= l
		}
		return acc, true
	default:
		return current, false
	}
}

// SupportKind classifies how a gate's inputs cause a transition of its
// output to the given target: either every input must sit at its
// required level (AND-causality: the MAX timing rule of §III.C), or any
// single input at a forcing level suffices (OR-causality, which Signal
// Graphs cannot express — distributive circuits guarantee a unique
// forcing input in every reachable context).
type SupportKind int

// Causality classes returned by Support.
const (
	SupportAnd SupportKind = iota
	SupportOr
)

// Support returns, for a transition of the gate's output to target under
// the given input levels, the causality class and the indices of the
// supporting inputs: for AND-causality all inputs (each at its required
// level), for OR-causality the inputs currently at the forcing level.
func (t GateType) Support(in []Level, target Level) (SupportKind, []int) {
	all := func() []int {
		idx := make([]int, len(in))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	at := func(l Level) []int {
		var idx []int
		for i, v := range in {
			if v == l {
				idx = append(idx, i)
			}
		}
		return idx
	}
	switch t {
	case CElement:
		return SupportAnd, all()
	case Majority:
		// The inputs at the winning level carry the majority; all of
		// them jointly force the output (AND over the coalition).
		return SupportAnd, at(target)
	case Nor:
		if target == High {
			return SupportAnd, all() // all inputs low
		}
		return SupportOr, at(High)
	case Nand:
		if target == Low {
			return SupportAnd, all() // all inputs high
		}
		return SupportOr, at(Low)
	case And:
		if target == High {
			return SupportAnd, all()
		}
		return SupportOr, at(Low)
	case Or:
		if target == Low {
			return SupportAnd, all()
		}
		return SupportOr, at(High)
	case Inv, Buf:
		return SupportAnd, all()
	case Xor:
		// Every input change toggles an XOR; the most recent change is
		// the cause. Treated as OR over all inputs by the simulator.
		return SupportOr, all()
	default:
		return SupportAnd, all()
	}
}

func allAt(in []Level, l Level) bool {
	for _, v := range in {
		if v != l {
			return false
		}
	}
	return true
}

func boolLevel(b bool) Level {
	if b {
		return High
	}
	return Low
}
