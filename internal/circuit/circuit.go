// Package circuit models gate-level asynchronous circuits: the substrate
// of §VIII of the paper. Circuits are built from C-elements, NOR/NAND/
// AND/OR gates, inverters, buffers, XORs and majority gates, with an
// individual propagation delay per gate *input* (§VIII.A: "delays
// associated with different in-arcs of the same event can differ",
// reflecting transistor-level input-output characteristics).
//
// The package provides construction/validation (this file), gate
// excitation semantics (gate.go) and a timed event-driven simulator with
// hazard detection (sim.go). Package extract derives Signal Graphs from
// circuits; the timed simulator independently cross-checks the derived
// graph's timing simulation.
package circuit

import (
	"fmt"
)

// SignalID identifies a signal (a wire) within a Circuit.
type SignalID int

// Level is a binary signal level.
type Level uint8

// Signal levels.
const (
	Low  Level = 0
	High Level = 1
)

func (l Level) String() string {
	if l == High {
		return "1"
	}
	return "0"
}

// Toggle returns the opposite level.
func (l Level) Toggle() Level { return l ^ 1 }

// Signal is a named wire with an initial level. A signal is either a
// primary input or the output of exactly one gate.
type Signal struct {
	Name    string
	Initial Level
	IsInput bool
	Driver  int // gate index, or -1 for primary inputs
}

// Gate is a logic element with one output and per-input pin delays.
type Gate struct {
	Name   string
	Type   GateType
	Out    SignalID
	Ins    []SignalID
	Delays []float64 // pin delay per input, same length as Ins
}

// Circuit is an immutable gate-level netlist with an initial state.
type Circuit struct {
	name    string
	signals []Signal
	gates   []Gate
	byName  map[string]SignalID
	fanout  [][]int // gate indices reading each signal
}

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.name }

// NumSignals returns the number of signals.
func (c *Circuit) NumSignals() int { return len(c.signals) }

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Signal returns the signal with the given ID.
func (c *Circuit) Signal(id SignalID) Signal { return c.signals[id] }

// Gate returns the gate with the given index.
func (c *Circuit) Gate(i int) Gate { return c.gates[i] }

// SignalByName returns the ID of the named signal.
func (c *Circuit) SignalByName(name string) (SignalID, bool) {
	id, ok := c.byName[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// MustSignal returns the ID of the named signal, panicking if absent.
// Intended for tests and examples working with known circuits.
func (c *Circuit) MustSignal(name string) SignalID {
	id, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("circuit: %q has no signal %q", c.name, name))
	}
	return id
}

// Fanout returns the gates reading signal s (shared slice).
func (c *Circuit) Fanout(s SignalID) []int { return c.fanout[s] }

// Inputs returns the primary input signals in ID order.
func (c *Circuit) Inputs() []SignalID {
	var ids []SignalID
	for i, s := range c.signals {
		if s.IsInput {
			ids = append(ids, SignalID(i))
		}
	}
	return ids
}

// InitialLevels returns a fresh copy of the initial state.
func (c *Circuit) InitialLevels() []Level {
	levels := make([]Level, len(c.signals))
	for i, s := range c.signals {
		levels[i] = s.Initial
	}
	return levels
}

// InitiallyStable reports whether no gate is excited at the initial
// state, i.e. the circuit is quiescent until an input changes.
func (c *Circuit) InitiallyStable() bool {
	levels := c.InitialLevels()
	for i := range c.gates {
		if c.Excited(i, levels) {
			return false
		}
	}
	return true
}

// Excited reports whether gate i's output differs from its target value
// under the given levels.
func (c *Circuit) Excited(i int, levels []Level) bool {
	g := &c.gates[i]
	target, ok := g.Type.Eval(gateInputs(g, levels), levels[g.Out])
	return ok && target != levels[g.Out]
}

func gateInputs(g *Gate, levels []Level) []Level {
	in := make([]Level, len(g.Ins))
	for i, s := range g.Ins {
		in[i] = levels[s]
	}
	return in
}

// Builder accumulates signals and gates; the first error is reported by
// Build.
type Builder struct {
	name    string
	signals []Signal
	gates   []Gate
	byName  map[string]SignalID
	err     error
}

// NewBuilder returns an empty circuit builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]SignalID)}
}

func (b *Builder) signal(name string, initial Level, isInput bool) SignalID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := SignalID(len(b.signals))
	b.byName[name] = id
	b.signals = append(b.signals, Signal{Name: name, Initial: initial, IsInput: isInput, Driver: -1})
	return id
}

// Input declares a primary input with its initial level.
func (b *Builder) Input(name string, initial Level) *Builder {
	if b.err != nil {
		return b
	}
	if id, ok := b.byName[name]; ok {
		if b.signals[id].IsInput {
			b.err = fmt.Errorf("circuit: duplicate input %q", name)
		} else {
			b.err = fmt.Errorf("circuit: input %q collides with a gate output", name)
		}
		return b
	}
	b.signal(name, initial, true)
	return b
}

// Gate adds a gate driving out from the given inputs. The variadic
// delays give per-input pin delays; a single value applies to all pins,
// and no value defaults every pin to 1. The output's initial level is
// set with Init (default Low).
func (b *Builder) Gate(typ GateType, out string, ins []string, delays ...float64) *Builder {
	if b.err != nil {
		return b
	}
	if err := typ.CheckArity(len(ins)); err != nil {
		b.err = fmt.Errorf("circuit: gate %q: %w", out, err)
		return b
	}
	outID := b.signal(out, Low, false)
	if b.signals[outID].IsInput {
		b.err = fmt.Errorf("circuit: gate output %q is declared as an input", out)
		return b
	}
	if b.signals[outID].Driver != -1 {
		b.err = fmt.Errorf("circuit: signal %q driven by two gates", out)
		return b
	}
	var pins []float64
	switch len(delays) {
	case 0:
		pins = make([]float64, len(ins))
		for i := range pins {
			pins[i] = 1
		}
	case 1:
		pins = make([]float64, len(ins))
		for i := range pins {
			pins[i] = delays[0]
		}
	case len(ins):
		pins = append([]float64(nil), delays...)
	default:
		b.err = fmt.Errorf("circuit: gate %q has %d inputs but %d delays", out, len(ins), len(delays))
		return b
	}
	for _, d := range pins {
		if d < 0 {
			b.err = fmt.Errorf("circuit: gate %q has negative pin delay %g", out, d)
			return b
		}
	}
	inIDs := make([]SignalID, len(ins))
	for i, n := range ins {
		inIDs[i] = b.signal(n, Low, false)
	}
	gi := len(b.gates)
	b.gates = append(b.gates, Gate{
		Name: out, Type: typ, Out: outID, Ins: inIDs, Delays: pins,
	})
	b.signals[outID].Driver = gi
	return b
}

// Init sets the initial level of a signal (inputs default to the level
// given at declaration; gate outputs default to Low).
func (b *Builder) Init(name string, level Level) *Builder {
	if b.err != nil {
		return b
	}
	id, ok := b.byName[name]
	if !ok {
		b.err = fmt.Errorf("circuit: Init of unknown signal %q", name)
		return b
	}
	b.signals[id].Initial = level
	return b
}

// Build validates and returns the immutable Circuit. Every signal must
// be an input or driven by a gate.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.signals) == 0 {
		return nil, fmt.Errorf("circuit: %q has no signals", b.name)
	}
	for _, s := range b.signals {
		if !s.IsInput && s.Driver == -1 {
			return nil, fmt.Errorf("circuit: signal %q is neither an input nor a gate output", s.Name)
		}
	}
	c := &Circuit{
		name:    b.name,
		signals: append([]Signal(nil), b.signals...),
		gates:   append([]Gate(nil), b.gates...),
		byName:  make(map[string]SignalID, len(b.signals)),
	}
	for n, id := range b.byName {
		c.byName[n] = id
	}
	c.fanout = make([][]int, len(c.signals))
	for gi := range c.gates {
		for _, in := range c.gates[gi].Ins {
			c.fanout[in] = append(c.fanout[in], gi)
		}
	}
	return c, nil
}
