package circuit

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// InputEvent is a scripted transition on a primary input.
type InputEvent struct {
	Signal string
	Time   float64
	Level  Level
}

// Transition is one recorded signal change of a timed simulation.
type Transition struct {
	Signal SignalID
	Index  int // 0-based occurrence count on this signal
	Time   float64
	Level  Level // level after the transition
}

// Hazard records an excitation that was cancelled before the output
// fired: the input pattern enabling the change was withdrawn. Hazards
// never occur in semi-modular (distributive) circuits; their presence
// means the Signal Graph model does not apply.
type Hazard struct {
	Gate string
	Time float64
}

// SimOptions bounds a timed simulation.
type SimOptions struct {
	// MaxTransitions stops the simulation after this many transitions
	// in total (default 10,000).
	MaxTransitions int
	// MaxTime stops the simulation at this time (default +Inf).
	MaxTime float64
	// Inputs scripts primary-input transitions.
	Inputs []InputEvent
}

// SimResult is the outcome of a timed simulation.
type SimResult struct {
	c           *Circuit
	Transitions []Transition
	Hazards     []Hazard
	// Final holds the levels at the end of the simulation.
	Final []Level
}

// Times returns the transition times of the given signal in occurrence
// order.
func (r *SimResult) Times(s SignalID) []float64 {
	var out []float64
	for _, t := range r.Transitions {
		if t.Signal == s {
			out = append(out, t.Time)
		}
	}
	return out
}

// Count returns how many times the signal transitioned.
func (r *SimResult) Count(s SignalID) int { return len(r.Times(s)) }

// pending is a scheduled output change.
type pending struct {
	time  float64
	seq   int // tie-break: schedule order, for determinism
	gate  int
	level Level
	valid bool // invalidated entries are skipped when popped
}

type pendingQueue []*pending

func (q pendingQueue) Len() int { return len(q) }
func (q pendingQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q pendingQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pendingQueue) Push(x interface{}) { *q = append(*q, x.(*pending)) }
func (q *pendingQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Simulate runs the timed event-driven simulation under the pure
// per-pin-delay model: when a gate becomes excited towards a target
// value, the output fires at
//
//   - max over supporting inputs of (input transition time + pin delay)
//     for AND-causality (the MAX rule of §III.C), and
//   - min over forcing inputs of (input transition time + pin delay)
//     for OR-causality (the earliest cause drives the output).
//
// If an input change withdraws a pending excitation, the event is
// cancelled and recorded as a hazard. For distributive circuits the
// transition times coincide with the timing simulation of the extracted
// Signal Graph, which the tests assert.
func Simulate(c *Circuit, opts SimOptions) (*SimResult, error) {
	maxTr := opts.MaxTransitions
	if maxTr == 0 {
		maxTr = 10_000
	}
	maxTime := opts.MaxTime
	if maxTime == 0 {
		maxTime = math.Inf(1)
	}

	levels := c.InitialLevels()
	lastChange := make([]float64, c.NumSignals()) // time of latest transition per signal
	counts := make([]int, c.NumSignals())
	slot := make([]*pending, c.NumGates()) // pending change per gate
	var queue pendingQueue
	seq := 0

	res := &SimResult{c: c}

	// Scripted input events become queue entries on pseudo-gate -1-i.
	inputs := append([]InputEvent(nil), opts.Inputs...)
	sort.SliceStable(inputs, func(i, j int) bool { return inputs[i].Time < inputs[j].Time })
	type inputChange struct {
		time   float64
		signal SignalID
		level  Level
	}
	var script []inputChange
	for _, ev := range inputs {
		id, ok := c.SignalByName(ev.Signal)
		if !ok {
			return nil, fmt.Errorf("circuit: scripted input %q not found", ev.Signal)
		}
		if !c.Signal(id).IsInput {
			return nil, fmt.Errorf("circuit: scripted signal %q is not a primary input", ev.Signal)
		}
		if ev.Time < 0 {
			return nil, fmt.Errorf("circuit: scripted input %q at negative time %g", ev.Signal, ev.Time)
		}
		script = append(script, inputChange{time: ev.Time, signal: id, level: ev.Level})
	}

	// reschedule recomputes gate gi's pending change after an input (or
	// its own output) changed at time now.
	reschedule := func(gi int, now float64) {
		g := c.Gate(gi)
		in := gateInputs(&g, levels)
		target, forced := g.Type.Eval(in, levels[g.Out])
		excited := forced && target != levels[g.Out]
		if !excited {
			if slot[gi] != nil && slot[gi].valid {
				slot[gi].valid = false
				res.Hazards = append(res.Hazards, Hazard{Gate: g.Name, Time: now})
			}
			slot[gi] = nil
			return
		}
		kind, support := g.Type.Support(in, target)
		// An input that never transitioned carries its initial level,
		// available at time 0 with no propagation cost (the initial
		// tokens of the Signal Graph); only real transitions incur the
		// pin delay.
		contribution := func(pi int) float64 {
			s := g.Ins[pi]
			if counts[s] == 0 {
				return 0
			}
			return lastChange[s] + g.Delays[pi]
		}
		var fire float64
		switch kind {
		case SupportAnd:
			fire = math.Inf(-1)
			for _, pi := range support {
				if t := contribution(pi); t > fire {
					fire = t
				}
			}
		case SupportOr:
			fire = math.Inf(1)
			for _, pi := range support {
				if t := contribution(pi); t < fire {
					fire = t
				}
			}
		}
		if math.IsInf(fire, 0) {
			fire = now
		}
		if fire < now {
			// The cause predates "now" (e.g. an input that settled long
			// ago): the output reacts immediately.
			fire = now
		}
		if slot[gi] != nil && slot[gi].valid && slot[gi].time == fire && slot[gi].level == target {
			return // unchanged
		}
		if slot[gi] != nil {
			slot[gi].valid = false
		}
		p := &pending{time: fire, seq: seq, gate: gi, level: target, valid: true}
		seq++
		slot[gi] = p
		heap.Push(&queue, p)
	}

	applyChange := func(s SignalID, level Level, now float64) {
		levels[s] = level
		lastChange[s] = now
		res.Transitions = append(res.Transitions, Transition{
			Signal: s, Index: counts[s], Time: now, Level: level,
		})
		counts[s]++
		for _, gi := range c.Fanout(s) {
			reschedule(gi, now)
		}
	}

	// Initial excitation (non-quiescent circuits start working at t=0).
	for gi := 0; gi < c.NumGates(); gi++ {
		reschedule(gi, 0)
	}

	si := 0
	for len(res.Transitions) < maxTr {
		// Next event: scripted input or pending gate change.
		var nextGate *pending
		for queue.Len() > 0 {
			p := queue[0]
			if !p.valid {
				heap.Pop(&queue)
				continue
			}
			nextGate = p
			break
		}
		var now float64
		useInput := false
		switch {
		case si < len(script) && (nextGate == nil || script[si].time <= nextGate.time):
			now = script[si].time
			useInput = true
		case nextGate != nil:
			now = nextGate.time
		default:
			return res.finish(levels), nil // quiescent
		}
		if now > maxTime {
			return res.finish(levels), nil
		}
		if useInput {
			chg := script[si]
			si++
			if levels[chg.signal] == chg.level {
				return nil, fmt.Errorf("circuit: scripted input %s already at %v at time %g",
					c.Signal(chg.signal).Name, chg.level, chg.time)
			}
			applyChange(chg.signal, chg.level, now)
			continue
		}
		heap.Pop(&queue)
		if !nextGate.valid {
			continue
		}
		gi := nextGate.gate
		slot[gi] = nil
		g := c.Gate(gi)
		applyChange(g.Out, nextGate.level, now)
		// The gate may be re-excited immediately (oscillators).
		reschedule(gi, now)
	}
	return res.finish(levels), nil
}

func (r *SimResult) finish(levels []Level) *SimResult {
	r.Final = append([]Level(nil), levels...)
	return r
}
