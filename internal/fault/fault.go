// Package fault is a seeded, deterministic network-fault harness: an
// http.RoundTripper wrapper that executes a scripted fault Plan against
// the requests flowing through it. It is the network-layer sibling of
// internal/store's armed crash points — faults are injected exactly
// where the schedule says, the schedule is a pure function of the seed,
// and the injection log can be replayed and diffed across runs.
//
// A Plan is a list of Rules. Each rule matches requests by node (the
// target scheme://host, a substring of it, or "*"), by route (a request
// path, a "prefix/*" wildcard, or "*"), by a request-count window
// (After/Count over the rule's own match ordinal), by phase (rules tied
// to a named phase fire only while the plan is in that phase), and by a
// seeded probability. A matched request suffers the rule's action:
//
//   - latency D (or D1..D2, ramping across the count window): the
//     request is delayed before it is sent;
//   - reset: the connection fails before the request reaches the
//     backend (the A→B direction of a partition — the backend never
//     sees the request);
//   - drop-response: the request is forwarded and PROCESSED by the
//     backend, then the response is discarded and a transport error
//     returned (the B→A direction of a partition — side effects
//     happened, the caller cannot know). Composing reset on one node
//     and drop-response on another scripts an asymmetric partition;
//   - error N: an HTTP response with status N is synthesized at the
//     transport without contacting the backend (error bursts);
//   - slow-body D/N: the response arrives promptly but its body drips
//     out N bytes every D (a stalled-sender pathology that defeats
//     connect-level health checks).
//
// Plans come from Go (NewPlan + Add) or from the text DSL (ParsePlan /
// LoadPlan), so the same scenario runs in a unit test and against real
// processes via tsgrouter -fault-plan. Determinism: every probabilistic
// decision for match ordinal k of rule i is a pure function of (seed,
// i, k), so the set of faulted ordinals — the schedule — is identical
// across runs with the same seed regardless of timing or concurrency.
package fault

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates fault actions.
type Kind int

const (
	// KindLatency delays the request before sending it.
	KindLatency Kind = iota
	// KindReset fails the request before it reaches the backend.
	KindReset
	// KindDropResponse forwards the request, then discards the response.
	KindDropResponse
	// KindError synthesizes an HTTP error status without forwarding.
	KindError
	// KindSlowBody drips the response body out slowly.
	KindSlowBody
)

var kindNames = map[Kind]string{
	KindLatency:      "latency",
	KindReset:        "reset",
	KindDropResponse: "drop-response",
	KindError:        "error",
	KindSlowBody:     "slow-body",
}

func (k Kind) String() string { return kindNames[k] }

// Rule is one scripted fault: a match scope plus an action.
type Rule struct {
	// Name labels the rule in the injection log (defaults to its kind).
	Name string

	// Node scopes by target: "*" or "" matches every node, anything
	// else must be a substring of "scheme://host" of the request URL
	// (so a full base URL, a bare ":port", or a host all work).
	Node string

	// Route scopes by path: "*" or "" matches every route, a trailing
	// "/*" matches the prefix, anything else must equal the path.
	Route string

	// Phase ties the rule to a named plan phase; "" is phase-agnostic.
	Phase string

	// After skips the first After matching requests (the fault arms
	// after a warm-up window).
	After int

	// Count bounds how many matches (past After) the rule applies to;
	// 0 means unlimited. A latency ramp spreads across this window.
	Count int

	// Prob applies the action to each in-window match with this seeded
	// probability; 0 or 1 means always.
	Prob float64

	// Kind selects the action.
	Kind Kind

	// Latency is the injected delay (KindLatency), or the ramp start
	// when LatencyEnd is set.
	Latency time.Duration
	// LatencyEnd, when nonzero, ramps the delay linearly from Latency
	// to LatencyEnd across the Count window (Count must be set).
	LatencyEnd time.Duration

	// Status is the synthesized HTTP status (KindError).
	Status int

	// DripEvery and DripBytes shape KindSlowBody: DripBytes of body are
	// released every DripEvery.
	DripEvery time.Duration
	DripBytes int
}

// armedRule pairs a Rule with its live match-ordinal counter. Rule
// itself stays a copyable value type so plans can be built from
// literals.
type armedRule struct {
	Rule
	seen atomic.Int64 // match ordinal counter (scope matches, pre-window)
}

func (r *Rule) label() string {
	if r.Name != "" {
		return r.Name
	}
	return r.Kind.String()
}

// matchScope reports whether the request's node/route fall in the
// rule's scope (ignoring window, phase, and probability).
func (r *Rule) matchScope(req *http.Request) bool {
	if r.Node != "" && r.Node != "*" {
		node := req.URL.Scheme + "://" + req.URL.Host
		if !strings.Contains(node, r.Node) {
			return false
		}
	}
	switch {
	case r.Route == "" || r.Route == "*":
	case strings.HasSuffix(r.Route, "/*"):
		if !strings.HasPrefix(req.URL.Path, strings.TrimSuffix(r.Route, "*")) {
			return false
		}
	default:
		if req.URL.Path != r.Route {
			return false
		}
	}
	return true
}

// Injection is one executed fault, for the schedule log.
type Injection struct {
	Rule    string        // rule label
	Ordinal int           // the rule's match ordinal the fault fired on
	Kind    Kind          // action taken
	Delay   time.Duration // injected latency (latency/slow-body rules)
}

// Plan is an armed fault schedule: rules, a seed, and a phase cursor.
// All methods are safe for concurrent use.
type Plan struct {
	seed   int64
	rules  []*armedRule
	phases []string

	mu       sync.Mutex
	phaseIdx int
	log      []Injection
}

// NewPlan returns an empty plan with the given determinism seed.
func NewPlan(seed int64) *Plan { return &Plan{seed: seed} }

// SetSeed replaces the plan's determinism seed (tsgrouter's -fault-seed
// overrides a plan file's "seed" directive). Call before arming the
// transport: reseeding mid-run would split the schedule across seeds.
func (p *Plan) SetSeed(seed int64) *Plan {
	p.seed = seed
	return p
}

// Add appends a rule and returns the plan for chaining.
func (p *Plan) Add(r Rule) *Plan {
	p.rules = append(p.rules, &armedRule{Rule: r})
	return p
}

// Phases declares the plan's ordered phase names; the plan starts in
// the first. Without phases, only phase-agnostic rules ever fire.
func (p *Plan) Phases(names ...string) *Plan {
	p.phases = names
	return p
}

// Phase returns the current phase name ("" when the plan has none).
func (p *Plan) Phase() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.phases) == 0 {
		return ""
	}
	return p.phases[p.phaseIdx]
}

// SetPhase jumps to a declared phase by name.
func (p *Plan) SetPhase(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, ph := range p.phases {
		if ph == name {
			p.phaseIdx = i
			return nil
		}
	}
	return fmt.Errorf("fault: plan has no phase %q (declared: %v)", name, p.phases)
}

// AdvancePhase moves to the next declared phase (clamping at the last)
// and returns the phase now in effect. tsgrouter maps SIGUSR1 here so
// shell scripts can walk a multi-phase scenario.
func (p *Plan) AdvancePhase() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.phases) == 0 {
		return ""
	}
	if p.phaseIdx < len(p.phases)-1 {
		p.phaseIdx++
	}
	return p.phases[p.phaseIdx]
}

// Schedule snapshots the injection log: every fault executed so far, in
// execution order. Two runs driving identical request sequences through
// plans with the same seed produce identical schedules.
func (p *Plan) Schedule() []Injection {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Injection, len(p.log))
	copy(out, p.log)
	return out
}

// Injected returns how many faults the plan has executed.
func (p *Plan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

func (p *Plan) record(inj Injection) {
	p.mu.Lock()
	p.log = append(p.log, inj)
	p.mu.Unlock()
}

// decide is the deterministic coin for rule i's match ordinal k: a
// SplitMix64 of (seed, i, k) mapped to [0,1). Pure function — no shared
// RNG state, so concurrency cannot perturb the schedule.
func (p *Plan) decide(rule, ordinal int, prob float64) bool {
	if prob <= 0 || prob >= 1 {
		return true
	}
	x := uint64(p.seed)*0x9E3779B97F4A7C15 ^ uint64(rule)*0xBF58476D1CE4E5B9 ^ uint64(ordinal)*0x94D049BB133111EB
	// SplitMix64 finalizer.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < prob
}

// active returns the action rule (if any) for this request: the first
// rule in declaration order whose scope, phase, window, and coin all
// say fire, plus the latency to inject for ramp rules.
func (p *Plan) active(req *http.Request) (*armedRule, int, time.Duration) {
	phase := p.Phase()
	for i, r := range p.rules {
		if r.Phase != "" && r.Phase != phase {
			continue
		}
		if !r.matchScope(req) {
			continue
		}
		ord := int(r.seen.Add(1)) - 1 // 0-based match ordinal
		if ord < r.After {
			continue
		}
		if r.Count > 0 && ord >= r.After+r.Count {
			continue
		}
		if !p.decide(i, ord, r.Prob) {
			continue
		}
		d := r.Latency
		if r.LatencyEnd != 0 && r.Count > 1 {
			frac := float64(ord-r.After) / float64(r.Count-1)
			d = r.Latency + time.Duration(frac*float64(r.LatencyEnd-r.Latency))
		}
		return r, ord, d
	}
	return nil, 0, 0
}

// ResetError is the injected connection failure, distinguishable from
// real transport errors in assertions and logs.
type ResetError struct {
	Rule  string
	Route string
}

func (e *ResetError) Error() string {
	return fmt.Sprintf("fault: injected connection reset (rule %s) on %s", e.Rule, e.Route)
}

// DroppedResponseError reports a response discarded after the backend
// processed the request — the asymmetric half of a partition.
type DroppedResponseError struct {
	Rule  string
	Route string
}

func (e *DroppedResponseError) Error() string {
	return fmt.Sprintf("fault: injected response drop (rule %s) on %s — the backend DID process this request", e.Rule, e.Route)
}

// Transport is the fault-executing RoundTripper.
type Transport struct {
	base http.RoundTripper
	plan *Plan
}

// NewTransport wraps base (nil means http.DefaultTransport) with the
// plan. A nil plan passes everything through untouched.
func NewTransport(base http.RoundTripper, plan *Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plan: plan}
}

// RoundTrip executes the plan against one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.plan == nil {
		return t.base.RoundTrip(req)
	}
	r, ord, delay := t.plan.active(req)
	if r == nil {
		return t.base.RoundTrip(req)
	}
	switch r.Kind {
	case KindLatency:
		t.plan.record(Injection{Rule: r.label(), Ordinal: ord, Kind: r.Kind, Delay: delay})
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case KindReset:
		t.plan.record(Injection{Rule: r.label(), Ordinal: ord, Kind: r.Kind})
		// Drain and close the body like a real failed send would.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &ResetError{Rule: r.label(), Route: req.URL.Path}
	case KindDropResponse:
		t.plan.record(Injection{Rule: r.label(), Ordinal: ord, Kind: r.Kind})
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &DroppedResponseError{Rule: r.label(), Route: req.URL.Path}
	case KindError:
		t.plan.record(Injection{Rule: r.label(), Ordinal: ord, Kind: r.Kind})
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"fault: injected HTTP %d (rule %s)"}`, r.Status, r.label())
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			StatusCode:    r.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindSlowBody:
		t.plan.record(Injection{Rule: r.label(), Ordinal: ord, Kind: r.Kind, Delay: r.DripEvery})
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &dripReader{rc: resp.Body, every: r.DripEvery, chunk: r.DripBytes, ctx: req.Context()}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// dripReader releases at most chunk bytes per read, sleeping `every`
// before each one.
type dripReader struct {
	rc    io.ReadCloser
	every time.Duration
	chunk int
	ctx   interface{ Done() <-chan struct{} }
}

func (d *dripReader) Read(p []byte) (int, error) {
	select {
	case <-time.After(d.every):
	case <-d.ctx.Done():
		return 0, io.ErrUnexpectedEOF
	}
	if d.chunk > 0 && len(p) > d.chunk {
		p = p[:d.chunk]
	}
	return d.rc.Read(p)
}

func (d *dripReader) Close() error { return d.rc.Close() }

// --- the text DSL ----------------------------------------------------------

// ParsePlan reads the fault-plan DSL. Line oriented; # starts a
// comment; blank lines are skipped.
//
//	seed 42
//	phases inject heal
//	fault latency  node=:7437 route=/v1/* after=10 count=200 latency=50ms
//	fault latency  node=*     route=/v1/analyze latency=10ms..500ms count=100
//	fault reset    node=http://127.0.0.1:7438 prob=0.3 phase=inject
//	fault drop-response node=:7437 route=/v1/* count=40
//	fault error    node=* status=503 after=50 count=20
//	fault slow-body node=:7439 drip=2ms/256
//
// Key=value pairs may come in any order; the action keyword right after
// "fault" picks the kind. A "name=" pair labels the rule in the
// schedule log.
func ParsePlan(text string) (*Plan, error) {
	p := NewPlan(0)
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault plan line %d: seed wants one integer", ln+1)
			}
			s, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault plan line %d: bad seed %q", ln+1, fields[1])
			}
			p.seed = s
		case "phases":
			if len(fields) < 2 {
				return nil, fmt.Errorf("fault plan line %d: phases wants at least one name", ln+1)
			}
			p.Phases(fields[1:]...)
		case "fault":
			if len(fields) < 2 {
				return nil, fmt.Errorf("fault plan line %d: fault wants an action", ln+1)
			}
			r, err := parseRule(fields[1], fields[2:])
			if err != nil {
				return nil, fmt.Errorf("fault plan line %d: %w", ln+1, err)
			}
			p.Add(*r)
		default:
			return nil, fmt.Errorf("fault plan line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	// Phase references must resolve, or a typo silently disarms a rule.
	declared := map[string]bool{}
	for _, ph := range p.phases {
		declared[ph] = true
	}
	for _, r := range p.rules {
		if r.Phase != "" && !declared[r.Phase] {
			return nil, fmt.Errorf("fault plan: rule %s references undeclared phase %q", r.label(), r.Phase)
		}
	}
	return p, nil
}

// LoadPlan reads ParsePlan's DSL from a file.
func LoadPlan(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePlan(string(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func parseRule(action string, kvs []string) (*Rule, error) {
	r := &Rule{}
	switch action {
	case "latency":
		r.Kind = KindLatency
	case "reset":
		r.Kind = KindReset
	case "drop-response":
		r.Kind = KindDropResponse
	case "error":
		r.Kind = KindError
		r.Status = http.StatusInternalServerError
	case "slow-body":
		r.Kind = KindSlowBody
		r.DripEvery = time.Millisecond
		r.DripBytes = 256
	default:
		return nil, fmt.Errorf("unknown fault action %q", action)
	}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("want key=value, got %q", kv)
		}
		var err error
		switch k {
		case "name":
			r.Name = v
		case "node":
			r.Node = v
		case "route":
			r.Route = v
		case "phase":
			r.Phase = v
		case "after":
			r.After, err = strconv.Atoi(v)
		case "count":
			r.Count, err = strconv.Atoi(v)
		case "prob":
			r.Prob, err = strconv.ParseFloat(v, 64)
			if err == nil && (r.Prob < 0 || r.Prob > 1) {
				err = fmt.Errorf("prob %v out of [0,1]", r.Prob)
			}
		case "latency":
			lo, hi, ramp := strings.Cut(v, "..")
			r.Latency, err = time.ParseDuration(lo)
			if err == nil && ramp {
				r.LatencyEnd, err = time.ParseDuration(hi)
			}
		case "status":
			r.Status, err = strconv.Atoi(v)
			if err == nil && (r.Status < 400 || r.Status > 599) {
				err = fmt.Errorf("status %d out of 4xx/5xx", r.Status)
			}
		case "drip":
			every, bytes, ok := strings.Cut(v, "/")
			if !ok {
				return nil, fmt.Errorf("drip wants every/bytes, got %q", v)
			}
			r.DripEvery, err = time.ParseDuration(every)
			if err == nil {
				r.DripBytes, err = strconv.Atoi(bytes)
			}
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %v", kv, err)
		}
	}
	if r.LatencyEnd != 0 && r.Count <= 1 {
		return nil, fmt.Errorf("latency ramp %v..%v needs count>1 to spread across", r.Latency, r.LatencyEnd)
	}
	return r, nil
}

// String renders the plan back to (normalized) DSL — handy in logs and
// round-trip tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.seed)
	if len(p.phases) > 0 {
		fmt.Fprintf(&b, "phases %s\n", strings.Join(p.phases, " "))
	}
	for _, r := range p.rules {
		fmt.Fprintf(&b, "fault %s", r.Kind)
		kv := []string{}
		if r.Name != "" {
			kv = append(kv, "name="+r.Name)
		}
		if r.Node != "" && r.Node != "*" {
			kv = append(kv, "node="+r.Node)
		}
		if r.Route != "" && r.Route != "*" {
			kv = append(kv, "route="+r.Route)
		}
		if r.Phase != "" {
			kv = append(kv, "phase="+r.Phase)
		}
		if r.After > 0 {
			kv = append(kv, fmt.Sprintf("after=%d", r.After))
		}
		if r.Count > 0 {
			kv = append(kv, fmt.Sprintf("count=%d", r.Count))
		}
		if r.Prob > 0 && r.Prob < 1 {
			kv = append(kv, fmt.Sprintf("prob=%g", r.Prob))
		}
		switch r.Kind {
		case KindLatency:
			if r.LatencyEnd != 0 {
				kv = append(kv, fmt.Sprintf("latency=%s..%s", r.Latency, r.LatencyEnd))
			} else {
				kv = append(kv, fmt.Sprintf("latency=%s", r.Latency))
			}
		case KindError:
			kv = append(kv, fmt.Sprintf("status=%d", r.Status))
		case KindSlowBody:
			kv = append(kv, fmt.Sprintf("drip=%s/%d", r.DripEvery, r.DripBytes))
		}
		for _, s := range kv {
			b.WriteString(" " + s)
		}
		b.WriteString("\n")
	}
	return b.String()
}
