package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func backend(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	hits := 0
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "payload-payload-payload-payload")
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func get(t *testing.T, cl *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl.Do(req)
}

func TestLatencyInjection(t *testing.T) {
	srv, _ := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindLatency, Latency: 60 * time.Millisecond})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	start := time.Now()
	resp, err := get(t, cl, srv.URL+"/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 60ms injected latency", d)
	}
	if n := plan.Injected(); n != 1 {
		t.Fatalf("Injected() = %d, want 1", n)
	}
}

func TestLatencyRamp(t *testing.T) {
	// A 5-request ramp 0..40ms must yield delays 0,10,20,30,40.
	srv, _ := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindLatency, Latency: 0, LatencyEnd: 40 * time.Millisecond, Count: 5})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	for i := 0; i < 5; i++ {
		resp, err := get(t, cl, srv.URL+"/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	sched := plan.Schedule()
	if len(sched) != 5 {
		t.Fatalf("schedule has %d entries, want 5", len(sched))
	}
	for i, inj := range sched {
		want := time.Duration(i) * 10 * time.Millisecond
		if inj.Delay != want {
			t.Fatalf("ramp step %d: delay %v, want %v", i, inj.Delay, want)
		}
	}
	// Past the window the rule is spent.
	resp, err := get(t, cl, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := plan.Injected(); n != 5 {
		t.Fatalf("rule fired past its count window: %d injections", n)
	}
}

func TestResetNeverReachesBackend(t *testing.T) {
	srv, hits := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindReset})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	_, err := get(t, cl, srv.URL+"/v1/edit")
	var re *ResetError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResetError", err)
	}
	if *hits != 0 {
		t.Fatalf("backend saw %d requests; reset must fail before send", *hits)
	}
}

func TestDropResponseReachesBackend(t *testing.T) {
	// The asymmetric half: the backend processes the request, the
	// caller sees a transport error.
	srv, hits := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindDropResponse})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	_, err := get(t, cl, srv.URL+"/v1/edit")
	var de *DroppedResponseError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DroppedResponseError", err)
	}
	if *hits != 1 {
		t.Fatalf("backend saw %d requests, want 1 (drop-response forwards first)", *hits)
	}
}

func TestErrorSynthesis(t *testing.T) {
	srv, hits := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindError, Status: 503, Count: 2})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	for i := 0; i < 2; i++ {
		resp, err := get(t, cl, srv.URL+"/")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 503 {
			t.Fatalf("status = %d, want injected 503", resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(b), "injected") {
			t.Fatalf("body %q should identify itself as injected", b)
		}
	}
	if *hits != 0 {
		t.Fatalf("backend saw %d requests during error burst, want 0", *hits)
	}
	// Burst over: traffic flows again.
	resp, err := get(t, cl, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || *hits != 1 {
		t.Fatalf("after burst: status %d hits %d, want 200/1", resp.StatusCode, *hits)
	}
}

func TestSlowBodyDrip(t *testing.T) {
	srv, _ := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindSlowBody, DripEvery: 5 * time.Millisecond, DripBytes: 4})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	start := time.Now()
	resp, err := get(t, cl, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	// Headers arrive promptly; the 31-byte body drips 4 bytes per 5ms
	// => at least ceil(31/4)=8 sleeps ≈ 40ms to drain.
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 31 {
		t.Fatalf("read %d bytes, want full 31-byte body", len(b))
	}
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Fatalf("body drained in %v, want >= ~40ms of drip", d)
	}
}

func TestNodeAndRouteScoping(t *testing.T) {
	srvA, hitsA := backend(t)
	srvB, hitsB := backend(t)
	// Reset only srvB's /v1/* routes.
	plan := NewPlan(1).Add(Rule{Kind: KindReset, Node: srvB.URL, Route: "/v1/*"})
	cl := &http.Client{Transport: NewTransport(nil, plan)}

	if resp, err := get(t, cl, srvA.URL+"/v1/analyze"); err != nil {
		t.Fatalf("A should be clean: %v", err)
	} else {
		resp.Body.Close()
	}
	if resp, err := get(t, cl, srvB.URL+"/healthz"); err != nil {
		t.Fatalf("B's non-/v1 routes should be clean: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := get(t, cl, srvB.URL+"/v1/analyze"); err == nil {
		t.Fatal("B's /v1/* should be reset")
	}
	if *hitsA != 1 || *hitsB != 1 {
		t.Fatalf("hits A=%d B=%d, want 1/1", *hitsA, *hitsB)
	}
}

func TestAfterWindowAndPhases(t *testing.T) {
	srv, _ := backend(t)
	plan := NewPlan(1).
		Phases("calm", "storm").
		Add(Rule{Kind: KindReset, Phase: "storm", After: 1})
	cl := &http.Client{Transport: NewTransport(nil, plan)}

	// calm: nothing fires even past the After window.
	for i := 0; i < 3; i++ {
		resp, err := get(t, cl, srv.URL+"/")
		if err != nil {
			t.Fatalf("calm phase request %d failed: %v", i, err)
		}
		resp.Body.Close()
	}
	if got := plan.AdvancePhase(); got != "storm" {
		t.Fatalf("AdvancePhase() = %q, want storm", got)
	}
	// storm: first match is within After=1 (ordinal continues), rest reset.
	sawReset := false
	for i := 0; i < 3; i++ {
		resp, err := get(t, cl, srv.URL+"/")
		if err != nil {
			sawReset = true
			continue
		}
		resp.Body.Close()
	}
	if !sawReset {
		t.Fatal("storm phase never injected a reset")
	}
	if err := plan.SetPhase("calm"); err != nil {
		t.Fatal(err)
	}
	resp, err := get(t, cl, srv.URL+"/")
	if err != nil {
		t.Fatalf("back in calm, request failed: %v", err)
	}
	resp.Body.Close()
}

// TestSeedDeterminism is the acceptance-criteria assertion: the same
// seed produces the same injected schedule; a different seed does not.
func TestSeedDeterminism(t *testing.T) {
	srv, _ := backend(t)
	run := func(seed int64) []Injection {
		plan := NewPlan(seed).Add(Rule{Kind: KindReset, Prob: 0.35, Count: 200})
		cl := &http.Client{Transport: NewTransport(nil, plan)}
		for i := 0; i < 200; i++ {
			if resp, err := get(t, cl, srv.URL+"/"); err == nil {
				resp.Body.Close()
			}
		}
		return plan.Schedule()
	}
	a, b, c := run(42), run(42), run(43)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob=0.35 over 200 requests injected %d faults; want a strict subset", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}
}

// TestSeedDeterminismUnderConcurrency: the SET of faulted ordinals is a
// pure function of the seed even when requests race — concurrency may
// reorder the log but cannot change which ordinals get faulted.
func TestSeedDeterminismUnderConcurrency(t *testing.T) {
	srv, _ := backend(t)
	run := func() map[int]bool {
		plan := NewPlan(7).Add(Rule{Kind: KindReset, Prob: 0.5, Count: 100})
		cl := &http.Client{Transport: NewTransport(nil, plan)}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100/8; i++ {
					if resp, err := get(t, cl, srv.URL+"/"); err == nil {
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Wait()
		set := map[int]bool{}
		for _, inj := range plan.Schedule() {
			set[inj.Ordinal] = true
		}
		return set
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("faulted-ordinal sets differ in size: %d vs %d", len(a), len(b))
	}
	for ord := range a {
		if !b[ord] {
			t.Fatalf("ordinal %d faulted in run A but not run B", ord)
		}
	}
}

func TestParsePlanDSL(t *testing.T) {
	text := `
# asymmetric partition: node B's /v1 responses vanish, requests still land
seed 42
phases inject heal

fault drop-response name=b-to-a node=:7438 route=/v1/* phase=inject count=40
fault latency  node=* route=/v1/analyze after=10 count=100 latency=10ms..500ms
fault error    status=503 prob=0.25 count=20
fault slow-body node=:7439 drip=2ms/256
fault reset    node=http://127.0.0.1:7440
`
	p, err := ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.seed != 42 {
		t.Fatalf("seed = %d, want 42", p.seed)
	}
	if p.Phase() != "inject" {
		t.Fatalf("initial phase = %q, want inject", p.Phase())
	}
	if len(p.rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(p.rules))
	}
	r := p.rules[0]
	if r.Kind != KindDropResponse || r.Name != "b-to-a" || r.Node != ":7438" || r.Route != "/v1/*" || r.Phase != "inject" || r.Count != 40 {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	r = p.rules[1]
	if r.Kind != KindLatency || r.Latency != 10*time.Millisecond || r.LatencyEnd != 500*time.Millisecond || r.After != 10 {
		t.Fatalf("rule 1 parsed wrong: %+v", r)
	}
	r = p.rules[3]
	if r.Kind != KindSlowBody || r.DripEvery != 2*time.Millisecond || r.DripBytes != 256 {
		t.Fatalf("rule 3 parsed wrong: %+v", r)
	}

	// String() round-trips to an equivalent plan.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("String() did not re-parse: %v\n%s", err, p.String())
	}
	if p2.String() != p.String() {
		t.Fatalf("round-trip not stable:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"fault warp node=*",                      // unknown action
		"fault reset frequency=always",           // unknown key
		"fault error status=200",                 // status outside 4xx/5xx
		"fault reset prob=1.5",                   // prob out of range
		"fault latency latency=1ms..2ms",         // ramp without count
		"fault reset phase=storm",                // undeclared phase
		"seed forty-two",                         // non-integer seed
		"teleport node=*",                        // unknown directive
		"fault slow-body drip=2ms",               // drip missing /bytes
		"phases",                                 // phases without names
		"fault latency latency=1ms..2ms count=1", // ramp needs count>1
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid plan", bad)
		}
	}
}

func TestNilPlanPassthrough(t *testing.T) {
	srv, hits := backend(t)
	cl := &http.Client{Transport: NewTransport(nil, nil)}
	resp, err := get(t, cl, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if *hits != 1 {
		t.Fatalf("hits = %d, want 1", *hits)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	srv, _ := backend(t)
	plan := NewPlan(1).Add(Rule{Kind: KindLatency, Latency: 5 * time.Second})
	cl := &http.Client{Transport: NewTransport(nil, plan)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/", nil)
	start := time.Now()
	_, err := cl.Do(req)
	if err == nil {
		t.Fatal("want context error, got success")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancel took %v; injected latency must honor the context", d)
	}
}
