package unfold_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tsg/internal/sg"
	"tsg/internal/unfold"
)

// oscillator builds the Fig. 1b / Fig. 2c Timed Signal Graph.
func oscillator(t testing.TB) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder("oscillator").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Events("a+", "a-", "b+", "b-", "c+", "c-").
		Arc("e-", "a+", 2, sg.Once()).
		Arc("e-", "f-", 3).
		Arc("f-", "b+", 1, sg.Once()).
		Arc("a+", "c+", 3).
		Arc("b+", "c+", 2).
		Arc("c+", "a-", 2).
		Arc("c+", "b-", 1).
		Arc("a-", "c-", 3).
		Arc("b-", "c-", 2).
		Arc("c-", "a+", 2, sg.Marked()).
		Arc("c-", "b+", 1, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("oscillator: %v", err)
	}
	return g
}

func inst(g *sg.Graph, name string, i int) unfold.Inst {
	return unfold.Inst{Event: g.MustEvent(name), Index: i}
}

func TestBuildStructure(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Fig. 2b: period 0 instantiates all 8 events, period 1 only the 6
	// repetitive ones.
	if got, want := u.NumNodes(), 14; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	// 9 intra-period-0 arcs + 2 marked arcs crossing into period 1 +
	// 6 intra-period-1 arcs.
	if got, want := u.NumArcs(), 17; got != want {
		t.Errorf("NumArcs = %d, want %d", got, want)
	}
	if u.Periods() != 2 {
		t.Errorf("Periods = %d, want 2", u.Periods())
	}
	// Every node must appear after all its predecessors (topological).
	for p := 0; p < u.NumNodes(); p++ {
		for _, ai := range u.In(p) {
			if a := u.Arc(ai); a.From >= p {
				t.Errorf("arc %s -> %s violates topological order",
					u.Name(u.Node(a.From)), u.Name(u.Node(p)))
			}
		}
	}
	// Non-repetitive events exist in period 0 only.
	if _, ok := u.Pos(inst(g, "e-", 1)); ok {
		t.Error("e-_1 exists; non-repetitive events must not repeat")
	}
	if _, ok := u.Pos(inst(g, "a+", 1)); !ok {
		t.Error("a+_1 missing from 2-period unfolding")
	}
}

func TestBuildErrors(t *testing.T) {
	g := oscillator(t)
	if _, err := unfold.Build(g, 0); err == nil {
		t.Error("Build with 0 periods succeeded, want error")
	}
	bad, err := sg.NewBuilder("bad").Events("a+", "b+").
		Arc("a+", "b+", 1).Arc("b+", "a+", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, err := unfold.Build(bad, 1); err == nil {
		t.Error("Build on unmarked-cycle graph succeeded, want error")
	}
}

func TestPeriodOrder(t *testing.T) {
	g := oscillator(t)
	order, err := unfold.PeriodOrder(g)
	if err != nil {
		t.Fatalf("PeriodOrder: %v", err)
	}
	pos := map[string]int{}
	for i, e := range order {
		pos[g.Event(e).Name] = i
	}
	// Intra-period dependencies of Fig. 2b.
	for _, pair := range [][2]string{
		{"e-", "f-"}, {"e-", "a+"}, {"f-", "b+"},
		{"a+", "c+"}, {"b+", "c+"}, {"c+", "a-"}, {"c+", "b-"},
		{"a-", "c-"}, {"b-", "c-"},
	} {
		if pos[pair[0]] >= pos[pair[1]] {
			t.Errorf("period order has %s at %d not before %s at %d",
				pair[0], pos[pair[0]], pair[1], pos[pair[1]])
		}
	}
}

// TestExample4Precedence checks the reachability sets of Example 4:
// the set of events NOT preceded by b+_0 is {e-_0, f-_0, a+_0}, and b+_0
// precedes everything from c+_0 onward.
func TestExample4Precedence(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b0 := inst(g, "b+", 0)
	notPreceded := []unfold.Inst{inst(g, "e-", 0), inst(g, "f-", 0), inst(g, "a+", 0)}
	for _, x := range notPreceded {
		p, err := u.Precedes(b0, x)
		if err != nil {
			t.Fatalf("Precedes: %v", err)
		}
		if p {
			t.Errorf("b+_0 precedes %s, want not (Example 4)", u.Name(x))
		}
	}
	preceded := []unfold.Inst{
		inst(g, "c+", 0), inst(g, "a-", 0), inst(g, "b-", 0), inst(g, "c-", 0),
		inst(g, "a+", 1), inst(g, "b+", 1), inst(g, "c+", 1),
	}
	for _, x := range preceded {
		p, err := u.Precedes(b0, x)
		if err != nil {
			t.Fatalf("Precedes: %v", err)
		}
		if !p {
			t.Errorf("b+_0 does not precede %s, want precede (Example 4)", u.Name(x))
		}
	}
}

func TestConcurrency(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// a+_0 and b+_0 are causally unordered in the unfolding.
	conc, err := u.Concurrent(inst(g, "a+", 0), inst(g, "b+", 0))
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if !conc {
		t.Error("a+_0 and b+_0 not concurrent, want concurrent")
	}
	// An event is not concurrent with itself.
	conc, err = u.Concurrent(inst(g, "a+", 0), inst(g, "a+", 0))
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if conc {
		t.Error("a+_0 concurrent with itself")
	}
	// e-_0 precedes everything, so it is concurrent with nothing.
	conc, err = u.Concurrent(inst(g, "e-", 0), inst(g, "c-", 0))
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if conc {
		t.Error("e-_0 concurrent with c-_0, want ordered")
	}
}

// TestExample3ViaLongestPath checks Prop. 1's duality on the plain
// simulation: longest-path distances from the initial event must equal
// the Example 3 timing-simulation table.
func TestExample3ViaLongestPath(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dist, pred, err := u.LongestPathFrom(inst(g, "e-", 0))
	if err != nil {
		t.Fatalf("LongestPathFrom: %v", err)
	}
	want := map[string]float64{
		"e-_0": 0, "f-_0": 3, "a+_0": 2, "b+_0": 4, "c+_0": 6,
		"a-_0": 8, "b-_0": 7, "c-_0": 11,
		"a+_1": 13, "b+_1": 12, "c+_1": 16,
	}
	for p := 0; p < u.NumNodes(); p++ {
		name := u.Name(u.Node(p))
		w, ok := want[name]
		if !ok {
			continue
		}
		if dist[p] != w {
			t.Errorf("longest path to %s = %g, want %g (Example 3)", name, dist[p], w)
		}
	}
	// Path reconstruction: walking pred from c+_1 must reach e-_0.
	p, _ := u.Pos(inst(g, "c+", 1))
	steps := 0
	for pred[p] != -1 {
		p = u.Arc(pred[p]).From
		steps++
		if steps > u.NumNodes() {
			t.Fatal("pred walk does not terminate")
		}
	}
	if u.Name(u.Node(p)) != "e-_0" {
		t.Errorf("pred walk from c+_1 ended at %s, want e-_0", u.Name(u.Node(p)))
	}
}

// TestQuasiPeriodicity checks the §III.B property that after the first
// period all succeeding periods follow a fixed graph pattern: the arc
// multiset entering period p (described relative to p) is identical for
// every p >= 1.
func TestQuasiPeriodicity(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 5)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pattern := func(period int) string {
		var pat []string
		for p := 0; p < u.NumNodes(); p++ {
			to := u.Node(p)
			if to.Index != period {
				continue
			}
			for _, ai := range u.In(p) {
				a := u.Arc(ai)
				from := u.Node(a.From)
				pat = append(pat, fmt.Sprintf("%s[%d]->%s δ%g",
					g.Event(from.Event).Name, to.Index-from.Index,
					g.Event(to.Event).Name, a.Delay))
			}
		}
		sort.Strings(pat)
		return strings.Join(pat, ";")
	}
	ref := pattern(1)
	if ref == "" {
		t.Fatal("empty arc pattern for period 1")
	}
	for p := 2; p <= 4; p++ {
		if got := pattern(p); got != ref {
			t.Errorf("period %d pattern differs from period 1:\n got %s\nwant %s", p, got, ref)
		}
	}
	// Period 0 differs: it contains the disengageable prefix.
	if pattern(0) == ref {
		t.Error("period 0 pattern equals steady-state pattern; prefix missing")
	}
}

func TestReachableErrors(t *testing.T) {
	g := oscillator(t)
	u, err := unfold.Build(g, 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := u.Reachable(inst(g, "a+", 7)); err == nil {
		t.Error("Reachable outside unfolding succeeded, want error")
	}
	if _, _, err := u.LongestPathFrom(inst(g, "a+", 7)); err == nil {
		t.Error("LongestPathFrom outside unfolding succeeded, want error")
	}
	if _, err := u.Precedes(inst(g, "a+", 7), inst(g, "a+", 0)); err == nil {
		t.Error("Precedes outside unfolding succeeded, want error")
	}
}
