// Package unfold materialises the acyclic unfolding of a Signal Graph
// (§III.B of the paper): a process in which every node is a single
// instantiation e_i of an event e of the original graph. The unfolding is
// divided into periods; period 0 holds the first instantiation of every
// event, later periods hold further instantiations of the repetitive
// events only. All cyclic Signal Graph processes are quasi-periodic: by
// construction every period beyond the first follows a fixed pattern.
//
// The timing analysis itself (package timesim) streams over periods and
// never builds this structure; the explicit unfolding exists as the
// reference semantics — for the longest-path duality of Prop. 1, the
// precedence (⇒) and concurrency (∥) relations, and cross-checking tests.
package unfold

import (
	"fmt"
	"math"

	"tsg/internal/sg"
)

// Inst identifies the Index-th instantiation of an event (e_i in the
// paper's notation, i >= 0).
type Inst struct {
	Event sg.EventID
	Index int
}

// Arc is an edge of the unfolding between node positions (indices into
// the topologically ordered node list).
type Arc struct {
	From, To int     // node positions
	Delay    float64 // copied from the source graph arc
	GraphArc int     // index of the originating arc in the Signal Graph
}

// Unfolding is an acyclic process of a Signal Graph covering a fixed
// number of periods.
type Unfolding struct {
	g       *sg.Graph
	periods int
	nodes   []Inst       // in topological order
	pos     map[Inst]int // node -> position
	arcs    []Arc
	out     [][]int // arc indices by source position
	in      [][]int // arc indices by target position
}

// Build unfolds g over the given number of periods (>= 1). The node order
// is topological: periods in sequence and, within each period, a
// topological order of the unmarked-arc subgraph (which is acyclic for
// every validated graph).
func Build(g *sg.Graph, periods int) (*Unfolding, error) {
	if periods < 1 {
		return nil, fmt.Errorf("unfold: periods must be >= 1, got %d", periods)
	}
	order, err := PeriodOrder(g)
	if err != nil {
		return nil, err
	}
	u := &Unfolding{g: g, periods: periods, pos: make(map[Inst]int)}
	for p := 0; p < periods; p++ {
		for _, e := range order {
			if p > 0 && !g.Event(e).Repetitive {
				continue
			}
			inst := Inst{Event: e, Index: p}
			u.pos[inst] = len(u.nodes)
			u.nodes = append(u.nodes, inst)
		}
	}
	u.out = make([][]int, len(u.nodes))
	u.in = make([][]int, len(u.nodes))
	for ai := 0; ai < g.NumArcs(); ai++ {
		a := g.Arc(ai)
		m := 0
		if a.Marked {
			m = 1
		}
		fromRep := g.Event(a.From).Repetitive
		toRep := g.Event(a.To).Repetitive
		switch {
		case fromRep:
			// f_i depends on e_{i-m} for every i >= m.
			last := periods - 1
			if !toRep {
				last = 0
			}
			for i := m; i <= last; i++ {
				u.addArc(Inst{a.From, i - m}, Inst{a.To, i}, a.Delay, ai)
			}
		default:
			// Non-repetitive source: e occurs once, so the arc
			// constrains f_m only (disengageable behaviour).
			if m < periods && (toRep || m == 0) {
				u.addArc(Inst{a.From, 0}, Inst{a.To, m}, a.Delay, ai)
			}
		}
	}
	return u, nil
}

func (u *Unfolding) addArc(from, to Inst, delay float64, graphArc int) {
	fp, ok := u.pos[from]
	if !ok {
		return
	}
	tp, ok := u.pos[to]
	if !ok {
		return
	}
	idx := len(u.arcs)
	u.arcs = append(u.arcs, Arc{From: fp, To: tp, Delay: delay, GraphArc: graphArc})
	u.out[fp] = append(u.out[fp], idx)
	u.in[tp] = append(u.in[tp], idx)
}

// Graph returns the underlying Signal Graph.
func (u *Unfolding) Graph() *sg.Graph { return u.g }

// Periods returns the number of unfolded periods.
func (u *Unfolding) Periods() int { return u.periods }

// NumNodes returns the number of instantiations.
func (u *Unfolding) NumNodes() int { return len(u.nodes) }

// NumArcs returns the number of unfolding arcs.
func (u *Unfolding) NumArcs() int { return len(u.arcs) }

// Node returns the instantiation at position p (positions are
// topologically ordered).
func (u *Unfolding) Node(p int) Inst { return u.nodes[p] }

// Arc returns the arc with index i.
func (u *Unfolding) Arc(i int) Arc { return u.arcs[i] }

// In returns the indices of arcs entering position p (shared slice).
func (u *Unfolding) In(p int) []int { return u.in[p] }

// Out returns the indices of arcs leaving position p (shared slice).
func (u *Unfolding) Out(p int) []int { return u.out[p] }

// Pos returns the position of an instantiation, or (-1, false) if it is
// not part of the unfolding.
func (u *Unfolding) Pos(inst Inst) (int, bool) {
	p, ok := u.pos[inst]
	if !ok {
		return -1, false
	}
	return p, true
}

// Name renders an instantiation as "a+_3".
func (u *Unfolding) Name(inst Inst) string {
	return fmt.Sprintf("%s_%d", u.g.Event(inst.Event).Name, inst.Index)
}

// Reachable returns, for every node position, whether it is reachable
// from the given instantiation through unfolding arcs (the e_i ⇒ f_j
// precedence of §III.A extended to cyclic graphs through the unfolding).
// The source itself is marked reachable.
func (u *Unfolding) Reachable(from Inst) ([]bool, error) {
	p, ok := u.pos[from]
	if !ok {
		return nil, fmt.Errorf("unfold: instantiation %s outside unfolding", u.Name(from))
	}
	reach := make([]bool, len(u.nodes))
	reach[p] = true
	// Nodes are topologically ordered, so one forward sweep suffices.
	for q := p; q < len(u.nodes); q++ {
		if !reach[q] {
			continue
		}
		for _, ai := range u.out[q] {
			reach[u.arcs[ai].To] = true
		}
	}
	return reach, nil
}

// Precedes reports whether x ⇒ y: every feasible sequence containing y
// has x before it, i.e. there is a directed path from x to y.
func (u *Unfolding) Precedes(x, y Inst) (bool, error) {
	reach, err := u.Reachable(x)
	if err != nil {
		return false, err
	}
	q, ok := u.pos[y]
	if !ok {
		return false, fmt.Errorf("unfold: instantiation %s outside unfolding", u.Name(y))
	}
	if x == y {
		return false, nil
	}
	return reach[q], nil
}

// Concurrent reports whether x ∥ y: neither precedes the other (§III.A).
func (u *Unfolding) Concurrent(x, y Inst) (bool, error) {
	if x == y {
		return false, nil
	}
	xy, err := u.Precedes(x, y)
	if err != nil {
		return false, err
	}
	yx, err := u.Precedes(y, x)
	if err != nil {
		return false, err
	}
	return !xy && !yx, nil
}

// LongestPathFrom computes, for every node position, the longest-path
// distance from the given instantiation, or -Inf where no path exists
// (Prop. 1: the longest path from g_0 to e_k equals t_g(e_k) for events
// reached by the event-initiated simulation). The distance of the source
// is 0. It also returns a predecessor-arc table for path reconstruction
// (-1 where undefined).
func (u *Unfolding) LongestPathFrom(from Inst) (dist []float64, pred []int, err error) {
	p, ok := u.pos[from]
	if !ok {
		return nil, nil, fmt.Errorf("unfold: instantiation %s outside unfolding", u.Name(from))
	}
	dist = make([]float64, len(u.nodes))
	pred = make([]int, len(u.nodes))
	for i := range dist {
		dist[i] = math.Inf(-1)
		pred[i] = -1
	}
	dist[p] = 0
	for q := p; q < len(u.nodes); q++ {
		if math.IsInf(dist[q], -1) {
			continue
		}
		for _, ai := range u.out[q] {
			a := u.arcs[ai]
			if d := dist[q] + a.Delay; d > dist[a.To] {
				dist[a.To] = d
				pred[a.To] = ai
			}
		}
	}
	return dist, pred, nil
}

// PeriodOrder returns the events of g in a topological order of its
// unmarked-arc subgraph: the valid intra-period evaluation order for the
// unfolding and the streaming timing simulation. Validated graphs always
// have one; an unmarked cycle yields an error. The order is computed
// once at Build time and cached on the graph (deterministic: smallest
// ready ID first); this wrapper remains for callers that think in terms
// of the unfolding.
func PeriodOrder(g *sg.Graph) ([]sg.EventID, error) {
	return g.PeriodOrder()
}
