package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"tsg/internal/sg"
)

// This file reads and writes the `.g` Signal Transition Graph format
// used by petrify, versify and the other asynchronous-synthesis tools —
// the de-facto interchange format for STGs:
//
//	.model name
//	.inputs a b
//	.outputs c
//	.graph
//	a+ b+ c+        # source transition followed by its successors
//	b+ c-
//	.marking { <a+,b+> <b+,c-> }
//	.end
//
// Standard `.g` carries no delays; the writer emits and the reader
// accepts the extension directive
//
//	.delay <from> <to> <value>
//
// with unlisted arcs defaulting to delay 1. Only fully repetitive
// graphs (no prefix events, no disengageable arcs) are representable —
// that is the class classical STGs describe; use the .tsg format for
// graphs with an initial part.

// ReadG parses a `.g` Signal Transition Graph.
func ReadG(r io.Reader) (*sg.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	b := sg.NewBuilder("stg")
	var (
		inGraph   bool
		ended     bool
		seenEvent = map[string]bool{}
		arcs      []([2]string)
		delays    = map[[2]string]float64{}
		marked    = map[[2]string]bool{}
	)
	declare := func(name string) {
		if !seenEvent[name] {
			seenEvent[name] = true
			b.Event(name)
		}
	}
	line := 0
	for sc.Scan() {
		line++
		fields, err := splitLine(sc.Text(), line)
		if err != nil {
			return nil, err
		}
		if len(fields) == 0 {
			continue
		}
		if ended {
			return nil, errf(line, "content after .end")
		}
		switch fields[0] {
		case ".model", ".name":
			if len(fields) != 2 {
				return nil, errf(line, "usage: .model <name>")
			}
			b = sg.NewBuilder(fields[1])
			seenEvent = map[string]bool{}
		case ".inputs", ".outputs", ".internal", ".dummy":
			// Signal classification: recorded only implicitly (events
			// appear when .graph references them).
		case ".graph":
			inGraph = true
		case ".marking":
			tokens := strings.Join(fields[1:], " ")
			tokens = strings.TrimPrefix(tokens, "{")
			tokens = strings.TrimSuffix(tokens, "}")
			for _, tok := range strings.Fields(tokens) {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				if !strings.HasPrefix(tok, "<") || !strings.HasSuffix(tok, ">") {
					return nil, errf(line, "marking token %q: want <from,to>", tok)
				}
				pair := strings.Split(tok[1:len(tok)-1], ",")
				if len(pair) != 2 {
					return nil, errf(line, "marking token %q: want <from,to>", tok)
				}
				marked[[2]string{pair[0], pair[1]}] = true
			}
		case ".delay":
			if len(fields) != 4 {
				return nil, errf(line, "usage: .delay <from> <to> <value>")
			}
			var d float64
			if _, err := fmt.Sscanf(fields[3], "%g", &d); err != nil {
				return nil, errf(line, "bad delay %q", fields[3])
			}
			delays[[2]string{fields[1], fields[2]}] = d
		case ".end":
			ended = true
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, errf(line, "unknown directive %q", fields[0])
			}
			if !inGraph {
				return nil, errf(line, "transition list before .graph")
			}
			if len(fields) < 2 {
				return nil, errf(line, "graph line needs a source and at least one successor")
			}
			from := fields[0]
			declare(from)
			for _, to := range fields[1:] {
				declare(to)
				arcs = append(arcs, [2]string{from, to})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inGraph {
		return nil, errf(line, "missing .graph section")
	}
	for _, a := range arcs {
		d, ok := delays[a]
		if !ok {
			d = 1
		}
		var opts []sg.ArcOption
		if marked[a] {
			opts = append(opts, sg.Marked())
			delete(marked, a)
		}
		b.Arc(a[0], a[1], d, opts...)
	}
	for pair := range marked {
		return nil, fmt.Errorf("netlist: marking on undeclared arc <%s,%s>", pair[0], pair[1])
	}
	return b.Build()
}

// WriteG serialises a fully repetitive graph in `.g` format (with the
// .delay extension for non-unit delays). Graphs with non-repetitive
// events or disengageable arcs are not representable; use WriteTSG.
func WriteG(w io.Writer, g *sg.Graph) error {
	for i := 0; i < g.NumEvents(); i++ {
		if !g.Event(sg.EventID(i)).Repetitive {
			return fmt.Errorf("netlist: event %q is non-repetitive; the .g format describes fully cyclic STGs only (use .tsg)",
				g.Event(sg.EventID(i)).Name)
		}
	}
	for i := 0; i < g.NumArcs(); i++ {
		if g.Arc(i).Once {
			return fmt.Errorf("netlist: disengageable arcs are not representable in .g format (use .tsg)")
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", g.Name())
	var signals []string
	seen := map[string]bool{}
	for i := 0; i < g.NumEvents(); i++ {
		s := g.Event(sg.EventID(i)).Signal
		if !seen[s] {
			seen[s] = true
			signals = append(signals, s)
		}
	}
	sort.Strings(signals)
	fmt.Fprintf(&b, ".outputs %s\n", strings.Join(signals, " "))
	b.WriteString(".graph\n")
	for e := 0; e < g.NumEvents(); e++ {
		outs := g.OutArcs(sg.EventID(e))
		if len(outs) == 0 {
			continue
		}
		b.WriteString(g.Event(sg.EventID(e)).Name)
		for _, ai := range outs {
			b.WriteByte(' ')
			b.WriteString(g.Event(g.Arc(ai).To).Name)
		}
		b.WriteByte('\n')
	}
	var marks []string
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if a.Marked {
			marks = append(marks, fmt.Sprintf("<%s,%s>", g.Event(a.From).Name, g.Event(a.To).Name))
		}
	}
	fmt.Fprintf(&b, ".marking { %s }\n", strings.Join(marks, " "))
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if a.Delay != 1 {
			fmt.Fprintf(&b, ".delay %s %s %g\n",
				g.Event(a.From).Name, g.Event(a.To).Name, a.Delay)
		}
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}
