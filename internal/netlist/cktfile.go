package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tsg/internal/circuit"
)

// Netlist bundles a parsed circuit with its scripted input transitions.
type Netlist struct {
	Circuit *circuit.Circuit
	Inputs  []circuit.InputEvent
}

// ReadCKT parses a gate-level circuit:
//
//	circuit <name>
//	input <signal> = <0|1>
//	gate <out> <TYPE> <in...> [: <delay...>]
//	init <signal> = <0|1>
//	at <time> <signal> = <0|1>
//
// Gate types are C, NOR, NAND, AND, OR, INV, BUF, XOR, MAJ. The optional
// delay list after ':' gives per-pin delays (one value applies to every
// pin; none defaults to 1). 'at' lines script primary-input transitions.
func ReadCKT(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		b      *circuit.Builder
		inputs []circuit.InputEvent
	)
	line := 0
	for sc.Scan() {
		line++
		fields, err := splitLine(sc.Text(), line)
		if err != nil {
			return nil, err
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "circuit":
			if b != nil {
				return nil, errf(line, "duplicate circuit header")
			}
			if len(fields) != 2 {
				return nil, errf(line, "usage: circuit <name>")
			}
			b = circuit.NewBuilder(fields[1])
		case "input":
			if b == nil {
				return nil, errf(line, "input before circuit header")
			}
			sig, lvl, err := parseAssign(fields[1:], line)
			if err != nil {
				return nil, err
			}
			b.Input(sig, lvl)
		case "gate":
			if b == nil {
				return nil, errf(line, "gate before circuit header")
			}
			if len(fields) < 4 {
				return nil, errf(line, "usage: gate <out> <TYPE> <in...> [: <delay...>]")
			}
			out := fields[1]
			typ, err := circuit.ParseGateType(fields[2])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			rest := fields[3:]
			var ins []string
			var delays []float64
			inDelays := false
			for _, tok := range rest {
				if tok == ":" {
					if inDelays {
						return nil, errf(line, "duplicate ':' in gate line")
					}
					inDelays = true
					continue
				}
				if inDelays {
					d, err := strconv.ParseFloat(tok, 64)
					if err != nil {
						return nil, errf(line, "bad delay %q: %v", tok, err)
					}
					delays = append(delays, d)
				} else {
					ins = append(ins, tok)
				}
			}
			if len(ins) == 0 {
				return nil, errf(line, "gate %q has no inputs", out)
			}
			b.Gate(typ, out, ins, delays...)
		case "init":
			if b == nil {
				return nil, errf(line, "init before circuit header")
			}
			sig, lvl, err := parseAssign(fields[1:], line)
			if err != nil {
				return nil, err
			}
			b.Init(sig, lvl)
		case "at":
			if b == nil {
				return nil, errf(line, "at before circuit header")
			}
			if len(fields) != 5 || fields[3] != "=" {
				return nil, errf(line, "usage: at <time> <signal> = <0|1>")
			}
			tm, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, errf(line, "bad time %q: %v", fields[1], err)
			}
			lvl, err := parseLevel(fields[4], line)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, circuit.InputEvent{Signal: fields[2], Time: tm, Level: lvl})
		default:
			return nil, errf(line, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, errf(line, "missing circuit header")
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	for _, ev := range inputs {
		id, ok := c.SignalByName(ev.Signal)
		if !ok {
			return nil, fmt.Errorf("netlist: scripted signal %q not declared", ev.Signal)
		}
		if !c.Signal(id).IsInput {
			return nil, fmt.Errorf("netlist: scripted signal %q is not an input", ev.Signal)
		}
	}
	return &Netlist{Circuit: c, Inputs: inputs}, nil
}

// WriteCKT serialises a netlist in the format ReadCKT parses.
func WriteCKT(w io.Writer, n *Netlist) error {
	c := n.Circuit
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s\n", c.Name())
	for _, id := range c.Inputs() {
		s := c.Signal(id)
		fmt.Fprintf(&b, "input %s = %s\n", s.Name, s.Initial)
	}
	for gi := 0; gi < c.NumGates(); gi++ {
		g := c.Gate(gi)
		fmt.Fprintf(&b, "gate %s %s", c.Signal(g.Out).Name, g.Type)
		for _, in := range g.Ins {
			fmt.Fprintf(&b, " %s", c.Signal(in).Name)
		}
		b.WriteString(" :")
		for _, d := range g.Delays {
			fmt.Fprintf(&b, " %g", d)
		}
		b.WriteByte('\n')
	}
	// Non-default initial levels of gate outputs.
	var inits []string
	for i := 0; i < c.NumSignals(); i++ {
		s := c.Signal(circuit.SignalID(i))
		if !s.IsInput && s.Initial == circuit.High {
			inits = append(inits, s.Name)
		}
	}
	sort.Strings(inits)
	for _, name := range inits {
		fmt.Fprintf(&b, "init %s = 1\n", name)
	}
	for _, ev := range n.Inputs {
		lvl := "0"
		if ev.Level == circuit.High {
			lvl = "1"
		}
		fmt.Fprintf(&b, "at %g %s = %s\n", ev.Time, ev.Signal, lvl)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func parseAssign(fields []string, line int) (string, circuit.Level, error) {
	if len(fields) != 3 || fields[1] != "=" {
		return "", 0, errf(line, "usage: <signal> = <0|1>")
	}
	lvl, err := parseLevel(fields[2], line)
	if err != nil {
		return "", 0, err
	}
	return fields[0], lvl, nil
}

func parseLevel(s string, line int) (circuit.Level, error) {
	switch s {
	case "0":
		return circuit.Low, nil
	case "1":
		return circuit.High, nil
	default:
		return 0, errf(line, "bad level %q (want 0 or 1)", s)
	}
}
