package netlist_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tsg/internal/circuit"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

func signature(g *sg.Graph) string {
	var lines []string
	for i := 0; i < g.NumEvents(); i++ {
		ev := g.Event(sg.EventID(i))
		lines = append(lines, fmt.Sprintf("event %s rep=%v", ev.Name, ev.Repetitive))
	}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		lines = append(lines, fmt.Sprintf("arc %s->%s δ=%g m=%v once=%v",
			g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Marked, a.Once))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestTSGRoundTrip(t *testing.T) {
	for _, build := range []func() (*sg.Graph, error){
		func() (*sg.Graph, error) { return gen.Oscillator(), nil },
		func() (*sg.Graph, error) { return gen.MullerRing(5) },
		func() (*sg.Graph, error) { return gen.Stack(7) },
	} {
		g, err := build()
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		var buf strings.Builder
		if err := netlist.WriteTSG(&buf, g); err != nil {
			t.Fatalf("WriteTSG: %v", err)
		}
		back, err := netlist.ReadTSG(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("ReadTSG(%s): %v\n%s", g.Name(), err, buf.String())
		}
		if signature(back) != signature(g) {
			t.Errorf("round trip of %s changed the graph:\n%s\nvs\n%s",
				g.Name(), signature(back), signature(g))
		}
		if back.Name() != g.Name() {
			t.Errorf("round trip name = %q, want %q", back.Name(), g.Name())
		}
	}
}

func TestTSGParseOscillatorAnalyzes(t *testing.T) {
	var buf strings.Builder
	if err := netlist.WriteTSG(&buf, gen.Oscillator()); err != nil {
		t.Fatalf("WriteTSG: %v", err)
	}
	g, err := netlist.ReadTSG(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadTSG: %v", err)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.CycleTime.Float() != 10 {
		t.Errorf("parsed oscillator cycle time = %v, want 10", res.CycleTime)
	}
}

func TestTSGParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no header", "event a+\n", "before tsg header"},
		{"dup header", "tsg a\ntsg b\n", "duplicate tsg header"},
		{"bad directive", "tsg a\nfrob x\n", "unknown directive"},
		{"bad event attr", "tsg a\nevent a+ frob\n", "unknown event attribute"},
		{"bad delay", "tsg a\nevent a+\nevent b+\narc a+ b+ xyz\n", "bad delay"},
		{"bad arc attr", "tsg a\nevent a+\nevent b+\narc a+ b+ 1 frob\n", "unknown arc attribute"},
		{"short arc", "tsg a\nevent a+\narc a+\n", "usage: arc"},
		{"unknown event", "tsg a\nevent a+\narc a+ zz 1\n", "unknown event"},
		{"empty", "", "missing tsg header"},
		{"quoting", "tsg a\nevent \"a\"\n", "quoting"},
		{"invalid graph", "tsg a\nevent a+\nevent b+\narc a+ b+ 1\narc b+ a+ 1\n", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := netlist.ReadTSG(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestTSGLax(t *testing.T) {
	src := "tsg a\nevent a+\nevent b+\narc a+ b+ 1\narc b+ a+ 1\n"
	if _, err := netlist.ReadTSG(strings.NewReader(src)); err == nil {
		t.Fatal("strict parse of unmarked cycle succeeded")
	}
	g, err := netlist.ReadTSGLax(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTSGLax: %v", err)
	}
	if g.NumArcs() != 2 {
		t.Errorf("lax parse arcs = %d, want 2", g.NumArcs())
	}
}

func TestCKTRoundTrip(t *testing.T) {
	oc, script := gen.OscillatorCircuit()
	n := &netlist.Netlist{Circuit: oc, Inputs: script}
	var buf strings.Builder
	if err := netlist.WriteCKT(&buf, n); err != nil {
		t.Fatalf("WriteCKT: %v", err)
	}
	back, err := netlist.ReadCKT(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadCKT: %v\n%s", err, buf.String())
	}
	c := back.Circuit
	if c.NumGates() != oc.NumGates() || c.NumSignals() != oc.NumSignals() {
		t.Errorf("round trip: %d gates / %d signals, want %d/%d",
			c.NumGates(), c.NumSignals(), oc.NumGates(), oc.NumSignals())
	}
	if len(back.Inputs) != 1 || back.Inputs[0].Signal != "e" || back.Inputs[0].Level != circuit.Low {
		t.Errorf("round trip inputs = %v", back.Inputs)
	}
	// The reparsed circuit must behave identically.
	res, err := circuit.Simulate(c, circuit.SimOptions{Inputs: back.Inputs, MaxTransitions: 20})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	cT := res.Times(c.MustSignal("c"))
	if len(cT) < 2 || cT[0] != 6 || cT[1] != 11 {
		t.Errorf("reparsed circuit c transitions = %v, want [6 11 ...]", cT)
	}
}

func TestCKTParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no header", "input e = 1\n", "before circuit header"},
		{"dup header", "circuit a\ncircuit b\n", "duplicate circuit header"},
		{"bad gate type", "circuit a\ninput i = 0\ngate y FROB i\n", "unknown gate type"},
		{"bad level", "circuit a\ninput i = 2\n", "bad level"},
		{"bad delay", "circuit a\ninput i = 0\ngate y BUF i : xx\n", "bad delay"},
		{"no inputs gate", "circuit a\ngate y BUF : 1\n", "no inputs"},
		{"bad at", "circuit a\ninput i = 0\nat zz i = 1\n", "bad time"},
		{"at unknown", "circuit a\ninput i = 0\ngate y BUF i\nat 0 q = 1\n", "not declared"},
		{"at gate", "circuit a\ninput i = 0\ngate y BUF i\nat 0 y = 1\n", "not an input"},
		{"undriven", "circuit a\ngate y BUF ghost\n", "neither an input nor a gate output"},
		{"empty", "", "missing circuit header"},
		{"double colon", "circuit a\ninput i = 0\ngate y BUF i : 1 : 2\n", "duplicate ':'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := netlist.ReadCKT(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	src := "tsg a\nevent a+\nevent b+\narc a+ b+ bogus\n"
	_, err := netlist.ReadTSG(strings.NewReader(src))
	var pe *netlist.ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func asParseError(err error, target **netlist.ParseError) bool {
	pe, ok := err.(*netlist.ParseError)
	if ok {
		*target = pe
	}
	return ok
}
