package netlist_test

import (
	"strings"
	"testing"

	"tsg/internal/dist"
	"tsg/internal/gen"
	"tsg/internal/netlist"
)

// TestReadTSGDistAnnotations: the statistical arc annotations parse
// into the delay model, and files without annotations yield the
// deterministic model.
func TestReadTSGDistAnnotations(t *testing.T) {
	src := `tsg annotated
event a
event b
event c
arc a b 2 ~uniform(1.8,2.2)
arc b c 3 ~normal(3,0.1) @proc
arc c a 1 marked ~tri(0.5,1,2) @proc
arc a c 4
`
	g, m, err := netlist.ReadTSGDist(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	if g.NumArcs() != 4 || m.NumArcs() != 4 {
		t.Fatalf("parsed %d graph arcs, %d model arcs", g.NumArcs(), m.NumArcs())
	}
	if m.Deterministic() {
		t.Fatalf("annotated model is deterministic")
	}
	if got := m.Dist(0).String(); got != "uniform(1.8,2.2)" {
		t.Fatalf("arc 0 dist %q", got)
	}
	if k := m.Dist(1).Kind(); k != dist.KindNormal {
		t.Fatalf("arc 1 kind %v, want normal", k)
	}
	if k := m.Dist(2).Kind(); k != dist.KindTriangular {
		t.Fatalf("arc 2 kind %v, want triangular", k)
	}
	if !m.Dist(3).IsPoint() {
		t.Fatalf("unannotated arc 3 not a point")
	}
	if m.Group(1) < 0 || m.Group(1) != m.Group(2) {
		t.Fatalf("@proc arcs not grouped: %d vs %d", m.Group(1), m.Group(2))
	}
	if m.Group(0) >= 0 || m.Group(3) >= 0 {
		t.Fatalf("untagged arcs grouped")
	}
	// The plain reader accepts (and discards) the same annotations.
	g2, err := netlist.ReadTSG(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTSG on annotated file: %v", err)
	}
	if g2.NumArcs() != g.NumArcs() {
		t.Fatalf("plain reader arc count %d, want %d", g2.NumArcs(), g.NumArcs())
	}
	// No annotations -> all-point model.
	_, m3, err := netlist.ReadTSGDist(strings.NewReader("tsg p\nevent x\nevent y\narc x y 1 marked\narc y x 1 marked\n"))
	if err != nil {
		t.Fatalf("ReadTSGDist(plain): %v", err)
	}
	if !m3.Deterministic() {
		t.Fatalf("plain file produced a random model")
	}
}

// TestReadTSGDistErrors: malformed annotations carry line numbers.
func TestReadTSGDistErrors(t *testing.T) {
	cases := []string{
		"tsg x\nevent a\nevent b\narc a b 1 ~frob(1,2)\narc b a 1 marked\n",
		"tsg x\nevent a\nevent b\narc a b 1 ~uniform(2,1)\narc b a 1 marked\n",
		"tsg x\nevent a\nevent b\narc a b 1 ~uniform(1,2) ~uniform(1,2)\narc b a 1 marked\n",
		"tsg x\nevent a\nevent b\narc a b 1 @\narc b a 1 marked\n",
		"tsg x\nevent a\nevent b\narc a b 1 @g1 @g2\narc b a 1 marked\n",
	}
	for i, src := range cases {
		if _, _, err := netlist.ReadTSGDist(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d: malformed annotation accepted", i)
		} else if !strings.Contains(err.Error(), "line 4") {
			t.Fatalf("case %d: error %q lacks line number", i, err)
		}
	}
}

// TestWriteTSGDistRoundTrip: write -> read preserves the graph, every
// distribution, and the correlation partition.
func TestWriteTSGDistRoundTrip(t *testing.T) {
	g, err := gen.Stack(5)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	m, err := gen.CorrelatedJitter(g, 0.15, 3)
	if err != nil {
		t.Fatalf("CorrelatedJitter: %v", err)
	}
	// Mix in other families.
	d1, err := dist.Discrete([]float64{1, 2, 3}, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetArc(0, d1); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.WriteTSGDist(&sb, g, m); err != nil {
		t.Fatalf("WriteTSGDist: %v", err)
	}
	g2, m2, err := netlist.ReadTSGDist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadTSGDist(round trip): %v\n%s", err, sb.String())
	}
	if g2.NumArcs() != g.NumArcs() || g2.NumEvents() != g.NumEvents() {
		t.Fatalf("round trip changed the graph shape")
	}
	for i := 0; i < g.NumArcs(); i++ {
		if a, b := m.Dist(i).String(), m2.Dist(i).String(); a != b {
			t.Fatalf("arc %d dist %q -> %q", i, a, b)
		}
	}
	// Correlation partitions must match (group ids may be renumbered).
	part := func(mm *dist.Model) map[int][]int {
		p := map[int][]int{}
		for i := 0; i < mm.NumArcs(); i++ {
			if mm.Dist(i).IsPoint() {
				continue
			}
			if gid := mm.Group(i); gid >= 0 {
				p[gid] = append(p[gid], i)
			}
		}
		return p
	}
	pa, pb := part(m), part(m2)
	if len(pa) != len(pb) {
		t.Fatalf("round trip changed group count: %d -> %d", len(pa), len(pb))
	}
	// Each original group must appear verbatim in the round-tripped
	// partition (first arc identifies it).
	for gid, arcs := range pa {
		found := false
		for _, arcs2 := range pb {
			if len(arcs) == len(arcs2) && arcs[0] == arcs2[0] {
				same := true
				for k := range arcs {
					if arcs[k] != arcs2[k] {
						same = false
						break
					}
				}
				if same {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("group %d (%v) lost in round trip: %v", gid, arcs, pb)
		}
	}
	// A second round trip is a fixed point (canonical form).
	var sb2 strings.Builder
	if err := netlist.WriteTSGDist(&sb2, g2, m2); err != nil {
		t.Fatalf("WriteTSGDist(2): %v", err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("annotated serialisation not canonical:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
	// WriteTSGDist with a nil model degrades to WriteTSG.
	var sb3, sb4 strings.Builder
	if err := netlist.WriteTSGDist(&sb3, g, nil); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteTSG(&sb4, g); err != nil {
		t.Fatal(err)
	}
	if sb3.String() != sb4.String() {
		t.Fatalf("nil-model WriteTSGDist differs from WriteTSG")
	}
	// Mismatched model size is rejected.
	wrong, err := dist.NewModel([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteTSGDist(&sb3, g, wrong); err == nil {
		t.Fatalf("arc-count mismatch accepted")
	}
}
