package netlist_test

import (
	"strings"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

// TestGRoundTrip: fully repetitive graphs survive a .g round trip.
func TestGRoundTrip(t *testing.T) {
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	stack, err := gen.Stack(5)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	for _, g := range []*sg.Graph{ring, stack} {
		var buf strings.Builder
		if err := netlist.WriteG(&buf, g); err != nil {
			t.Fatalf("WriteG(%s): %v", g.Name(), err)
		}
		back, err := netlist.ReadG(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("ReadG(%s): %v\n%s", g.Name(), err, buf.String())
		}
		if signature(back) != signature(g) {
			t.Errorf("%s: .g round trip changed the graph:\n%s\nvs\n%s",
				g.Name(), signature(back), signature(g))
		}
		if back.Name() != g.Name() {
			t.Errorf("name %q -> %q", g.Name(), back.Name())
		}
	}
}

// TestGReadHandWritten parses a petrify-style file and analyses it.
func TestGReadHandWritten(t *testing.T) {
	src := `
# a simple two-signal handshake
.model handshake
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.delay r+ a+ 3
.delay a+ r- 2
.end
`
	g, err := netlist.ReadG(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadG: %v", err)
	}
	if g.Name() != "handshake" || g.NumEvents() != 4 || g.NumArcs() != 4 {
		t.Fatalf("parsed %v", g)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// 3 + 2 + 1 + 1 (two unlisted arcs default to delay 1).
	if res.CycleTime.Float() != 7 {
		t.Errorf("λ = %v, want 7", res.CycleTime)
	}
}

func TestGParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no graph", ".model x\n.end\n", "missing .graph"},
		{"early transitions", ".model x\na+ b+\n", "before .graph"},
		{"bad directive", ".model x\n.frobnicate\n", "unknown directive"},
		{"bad marking", ".model x\n.graph\na+ b+\nb+ a+\n.marking { a+ }\n", "want <from,to>"},
		{"marking unknown arc", ".model x\n.graph\na+ b+\nb+ a+\n.marking { <a+,zz+> }\n", "undeclared arc"},
		{"bad delay", ".model x\n.graph\na+ b+\n.delay a+ b+ xx\n", "bad delay"},
		{"short graph line", ".model x\n.graph\na+\n", "at least one successor"},
		{"content after end", ".model x\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\na+ b+\n", "after .end"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := netlist.ReadG(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestWriteGRejectsPrefixGraphs(t *testing.T) {
	var buf strings.Builder
	if err := netlist.WriteG(&buf, gen.Oscillator()); err == nil ||
		!strings.Contains(err.Error(), "non-repetitive") {
		t.Errorf("WriteG(oscillator) error = %v, want non-repetitive rejection", err)
	}
}
