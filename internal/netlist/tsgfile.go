// Package netlist reads and writes the repository's two text formats:
//
//   - .tsg files describe Timed Signal Graphs (events, delay-labelled
//     arcs, initial marking, disengageable arcs);
//   - .ckt files describe gate-level circuits (inputs, gates with
//     per-pin delays, initial state, scripted input transitions).
//
// Both formats are line-oriented; '#' starts a comment. Parse errors
// carry 1-based line numbers.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tsg/internal/dist"
	"tsg/internal/sg"
)

// ParseError is a syntax or semantic error at a specific input line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ReadTSG parses a Timed Signal Graph:
//
//	tsg <name>
//	event <name> [nonrepetitive]
//	arc <from> <to> <delay> [marked] [once] [~<dist>] [@<group>]
//
// The optional statistical annotations — a delay distribution such as
// ~uniform(2,4) and a correlation-group tag such as @corr — are
// accepted and discarded here; ReadTSGDist returns them as a
// dist.Model. The graph is validated (sg.Validate); use ReadTSGLax to
// load invalid graphs for diagnosis.
func ReadTSG(r io.Reader) (*sg.Graph, error) {
	b, _, err := readTSGBuilder(r)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// ReadTSGLax parses like ReadTSG but skips semantic validation, so that
// tools can load a broken graph and report its problems.
func ReadTSGLax(r io.Reader) (*sg.Graph, error) {
	b, _, err := readTSGBuilder(r)
	if err != nil {
		return nil, err
	}
	return b.BuildUnchecked()
}

// ReadTSGDist parses a Timed Signal Graph together with its statistical
// delay annotations: arc lines may carry a distribution (e.g.
// ~uniform(2,4), ~normal(3,0.2), ~tri(1,2,4), ~choice(1:3,2:1)) and a
// correlation-group tag (@<name>; arcs sharing a tag share the sample
// variate, modelling common process variation). Arcs without a
// distribution stay points at their nominal delay, so a file without
// annotations yields the deterministic model.
func ReadTSGDist(r io.Reader) (*sg.Graph, *dist.Model, error) {
	b, anns, err := readTSGBuilder(r)
	if err != nil {
		return nil, nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	nominal := make([]float64, g.NumArcs())
	for i := range nominal {
		nominal[i] = g.Arc(i).Delay
	}
	m, err := dist.NewModel(nominal)
	if err != nil {
		return nil, nil, err
	}
	groups := map[string]int{}
	for _, a := range anns {
		if a.hasDist {
			if err := m.SetArc(a.arc, a.d); err != nil {
				return nil, nil, errf(a.line, "%v", err)
			}
		}
		if a.group != "" {
			gid, ok := groups[a.group]
			if !ok {
				gid = len(groups)
				groups[a.group] = gid
			}
			if err := m.SetGroup(a.arc, gid); err != nil {
				return nil, nil, errf(a.line, "%v", err)
			}
		}
	}
	return g, m, nil
}

// arcAnn is one arc's statistical annotation, collected during parsing.
type arcAnn struct {
	arc     int
	line    int
	d       dist.Dist
	hasDist bool
	group   string
}

func readTSGBuilder(r io.Reader) (*sg.Builder, []arcAnn, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var b *sg.Builder
	var anns []arcAnn
	line := 0
	arcs := 0
	for sc.Scan() {
		line++
		fields, err := splitLine(sc.Text(), line)
		if err != nil {
			return nil, nil, err
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "tsg":
			if b != nil {
				return nil, nil, errf(line, "duplicate tsg header")
			}
			if len(fields) != 2 {
				return nil, nil, errf(line, "usage: tsg <name>")
			}
			b = sg.NewBuilder(fields[1])
		case "event":
			if b == nil {
				return nil, nil, errf(line, "event before tsg header")
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, nil, errf(line, "usage: event <name> [nonrepetitive]")
			}
			var opts []sg.EventOption
			if len(fields) == 3 {
				if fields[2] != "nonrepetitive" {
					return nil, nil, errf(line, "unknown event attribute %q", fields[2])
				}
				opts = append(opts, sg.NonRepetitive())
			}
			b.Event(fields[1], opts...)
		case "arc":
			if b == nil {
				return nil, nil, errf(line, "arc before tsg header")
			}
			if len(fields) < 4 {
				return nil, nil, errf(line, "usage: arc <from> <to> <delay> [marked] [once] [~dist] [@group]")
			}
			delay, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, nil, errf(line, "bad delay %q: %v", fields[3], err)
			}
			ann := arcAnn{arc: arcs, line: line}
			var opts []sg.ArcOption
			for _, attr := range fields[4:] {
				switch {
				case attr == "marked":
					opts = append(opts, sg.Marked())
				case attr == "once":
					opts = append(opts, sg.Once())
				case strings.HasPrefix(attr, "~"):
					if ann.hasDist {
						return nil, nil, errf(line, "duplicate distribution annotation %q", attr)
					}
					d, err := dist.Parse(attr[1:])
					if err != nil {
						return nil, nil, errf(line, "%v", err)
					}
					ann.d, ann.hasDist = d, true
				case strings.HasPrefix(attr, "@"):
					if ann.group != "" {
						return nil, nil, errf(line, "duplicate correlation tag %q", attr)
					}
					if attr == "@" {
						return nil, nil, errf(line, "empty correlation tag")
					}
					ann.group = attr[1:]
				default:
					return nil, nil, errf(line, "unknown arc attribute %q", attr)
				}
			}
			b.Arc(fields[1], fields[2], delay, opts...)
			if ann.hasDist || ann.group != "" {
				anns = append(anns, ann)
			}
			arcs++
		default:
			return nil, nil, errf(line, "unknown directive %q", fields[0])
		}
		if err := b.Err(); err != nil {
			return nil, nil, errf(line, "%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, errf(line, "missing tsg header")
	}
	return b, anns, nil
}

// WriteTSG serialises a graph in the format ReadTSG parses; the output
// round-trips to a structurally identical graph.
func WriteTSG(w io.Writer, g *sg.Graph) error { return writeTSG(w, g, nil) }

// WriteTSGDist serialises a graph with its delay model: non-point
// distributions become ~ annotations and correlation groups become
// @c<k> tags (renumbered by first appearance, so the output is
// canonical). ReadTSGDist round-trips the result — same distributions,
// same correlation partition.
func WriteTSGDist(w io.Writer, g *sg.Graph, m *dist.Model) error {
	if m != nil && m.NumArcs() != g.NumArcs() {
		return fmt.Errorf("netlist: delay model covers %d arcs, graph has %d", m.NumArcs(), g.NumArcs())
	}
	return writeTSG(w, g, m)
}

func writeTSG(w io.Writer, g *sg.Graph, m *dist.Model) error {
	var b strings.Builder
	fmt.Fprintf(&b, "tsg %s\n", g.Name())
	for i := 0; i < g.NumEvents(); i++ {
		ev := g.Event(sg.EventID(i))
		if ev.Repetitive {
			fmt.Fprintf(&b, "event %s\n", ev.Name)
		} else {
			fmt.Fprintf(&b, "event %s nonrepetitive\n", ev.Name)
		}
	}
	groups := map[int]int{}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		fmt.Fprintf(&b, "arc %s %s %g", g.Event(a.From).Name, g.Event(a.To).Name, a.Delay)
		if a.Marked {
			b.WriteString(" marked")
		}
		if a.Once {
			b.WriteString(" once")
		}
		if m != nil {
			random := !m.Dist(i).IsPoint()
			if random {
				fmt.Fprintf(&b, " ~%s", m.Dist(i))
			}
			// Correlation tags on point arcs carry no sampling meaning;
			// emit them only where they matter so the output is canonical.
			if gid := m.Group(i); gid >= 0 && random {
				k, ok := groups[gid]
				if !ok {
					k = len(groups)
					groups[gid] = k
				}
				fmt.Fprintf(&b, " @c%d", k)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitLine tokenises one line, stripping comments.
func splitLine(s string, line int) ([]string, error) {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	fields := strings.Fields(s)
	for _, f := range fields {
		if strings.ContainsAny(f, "\"'") {
			return nil, errf(line, "quoting is not supported (token %q)", f)
		}
	}
	return fields, nil
}
