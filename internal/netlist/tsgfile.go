// Package netlist reads and writes the repository's two text formats:
//
//   - .tsg files describe Timed Signal Graphs (events, delay-labelled
//     arcs, initial marking, disengageable arcs);
//   - .ckt files describe gate-level circuits (inputs, gates with
//     per-pin delays, initial state, scripted input transitions).
//
// Both formats are line-oriented; '#' starts a comment. Parse errors
// carry 1-based line numbers.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tsg/internal/sg"
)

// ParseError is a syntax or semantic error at a specific input line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ReadTSG parses a Timed Signal Graph:
//
//	tsg <name>
//	event <name> [nonrepetitive]
//	arc <from> <to> <delay> [marked] [once]
//
// The graph is validated (sg.Validate); use ReadTSGLax to load invalid
// graphs for diagnosis.
func ReadTSG(r io.Reader) (*sg.Graph, error) {
	b, err := readTSGBuilder(r)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// ReadTSGLax parses like ReadTSG but skips semantic validation, so that
// tools can load a broken graph and report its problems.
func ReadTSGLax(r io.Reader) (*sg.Graph, error) {
	b, err := readTSGBuilder(r)
	if err != nil {
		return nil, err
	}
	return b.BuildUnchecked()
}

func readTSGBuilder(r io.Reader) (*sg.Builder, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var b *sg.Builder
	line := 0
	for sc.Scan() {
		line++
		fields, err := splitLine(sc.Text(), line)
		if err != nil {
			return nil, err
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "tsg":
			if b != nil {
				return nil, errf(line, "duplicate tsg header")
			}
			if len(fields) != 2 {
				return nil, errf(line, "usage: tsg <name>")
			}
			b = sg.NewBuilder(fields[1])
		case "event":
			if b == nil {
				return nil, errf(line, "event before tsg header")
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, errf(line, "usage: event <name> [nonrepetitive]")
			}
			var opts []sg.EventOption
			if len(fields) == 3 {
				if fields[2] != "nonrepetitive" {
					return nil, errf(line, "unknown event attribute %q", fields[2])
				}
				opts = append(opts, sg.NonRepetitive())
			}
			b.Event(fields[1], opts...)
		case "arc":
			if b == nil {
				return nil, errf(line, "arc before tsg header")
			}
			if len(fields) < 4 {
				return nil, errf(line, "usage: arc <from> <to> <delay> [marked] [once]")
			}
			delay, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, errf(line, "bad delay %q: %v", fields[3], err)
			}
			var opts []sg.ArcOption
			for _, attr := range fields[4:] {
				switch attr {
				case "marked":
					opts = append(opts, sg.Marked())
				case "once":
					opts = append(opts, sg.Once())
				default:
					return nil, errf(line, "unknown arc attribute %q", attr)
				}
			}
			b.Arc(fields[1], fields[2], delay, opts...)
		default:
			return nil, errf(line, "unknown directive %q", fields[0])
		}
		if err := b.Err(); err != nil {
			return nil, errf(line, "%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, errf(line, "missing tsg header")
	}
	return b, nil
}

// WriteTSG serialises a graph in the format ReadTSG parses; the output
// round-trips to a structurally identical graph.
func WriteTSG(w io.Writer, g *sg.Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "tsg %s\n", g.Name())
	for i := 0; i < g.NumEvents(); i++ {
		ev := g.Event(sg.EventID(i))
		if ev.Repetitive {
			fmt.Fprintf(&b, "event %s\n", ev.Name)
		} else {
			fmt.Fprintf(&b, "event %s nonrepetitive\n", ev.Name)
		}
	}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		fmt.Fprintf(&b, "arc %s %s %g", g.Event(a.From).Name, g.Event(a.To).Name, a.Delay)
		if a.Marked {
			b.WriteString(" marked")
		}
		if a.Once {
			b.WriteString(" once")
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitLine tokenises one line, stripping comments.
func splitLine(s string, line int) ([]string, error) {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	fields := strings.Fields(s)
	for _, f := range fields {
		if strings.ContainsAny(f, "\"'") {
			return nil, errf(line, "quoting is not supported (token %q)", f)
		}
	}
	return fields, nil
}
