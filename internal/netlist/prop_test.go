package netlist_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tsg/internal/gen"
	"tsg/internal/netlist"
)

// TestTSGRoundTripProperty: serialising and reparsing any random live
// graph yields a structurally identical graph.
func TestTSGRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 20,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		var buf strings.Builder
		if err := netlist.WriteTSG(&buf, g); err != nil {
			t.Fatalf("WriteTSG: %v", err)
		}
		back, err := netlist.ReadTSG(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("ReadTSG: %v\n%s", err, buf.String())
		}
		if signature(back) != signature(g) {
			t.Logf("seed %d: round trip changed the graph", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
