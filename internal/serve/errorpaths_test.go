package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tsg/internal/gen"
)

// postEndpoints is every POST route of the protocol; the error-path
// matrix below runs against each one, so adding an endpoint without
// extending the matrix fails the count check in TestBodyLimitEveryPOSTEndpoint.
var postEndpoints = []string{"/v1/graphs", "/v1/analyze", "/v1/slacks", "/v1/whatif", "/v1/edit", "/v1/mc", "/v1/fingerprint"}

// TestBodyLimitEveryPOSTEndpoint pins the MaxBytesReader contract on
// every POST route: a body over the configured limit answers 413, and
// the connection survives (the handler drained/aborted cleanly, so the
// next request on the client works).
func TestBodyLimitEveryPOSTEndpoint(t *testing.T) {
	if len(postEndpoints) != endpoints {
		t.Fatalf("matrix covers %d endpoints, server routes %d — extend postEndpoints", len(postEndpoints), endpoints)
	}
	s := New(Config{MaxBodyBytes: 64})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Syntactically valid JSON that overflows the limit mid-string, so
	// the decoder keeps reading until MaxBytesReader cuts it off (pure
	// garbage would fail JSON syntax first and legitimately answer 400).
	big := `{"graph": "` + strings.Repeat("x", 4096) + `"}`
	for _, path := range postEndpoints {
		ct := "application/json"
		if path == "/v1/graphs" {
			ct = "text/plain"
		}
		resp, err := srv.Client().Post(srv.URL+path, ct, strings.NewReader(big))
		if err != nil {
			t.Fatalf("POST %s oversized: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status %d, want 413", path, resp.StatusCode)
		}
	}
	// The server is still healthy after the whole abuse round.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after abuse: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after abuse: status %d", resp.StatusCode)
	}
}

// TestMalformedJSONEveryEndpoint pins the decode error path on every
// JSON POST route: truncated JSON, valid JSON of the wrong shape, and
// trailing garbage all answer 400 with a JSON error body — never a
// hang, a 500, or a panic.
func TestMalformedJSONEveryEndpoint(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	bodies := map[string]string{
		"truncated":        `{"graph": "tsg`,
		"wrong shape":      `[1, 2, 3]`,
		"trailing garbage": `{} {"again": true}`,
	}
	for _, path := range postEndpoints {
		if path == "/v1/graphs" {
			continue // raw .tsg body, not JSON
		}
		for name, body := range bodies {
			resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("POST %s %s: %v", path, name, err)
			}
			var e ErrorResponse
			decErr := json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("POST %s with %s JSON: status %d, want 400", path, name, resp.StatusCode)
			}
			if decErr != nil || e.Error == "" {
				t.Errorf("POST %s with %s JSON: error body not decodable (%v)", path, name, decErr)
			}
		}
	}
}

// TestEvictionRacesInFlightRequests hammers a tiny-budget cache with
// more graphs than it can hold while queries run against all of them
// concurrently: entries evict while sibling requests are mid-flight on
// the same engines. Every answer must still be the right λ for its
// graph (an evicted entry recompiles; an in-flight analysis on an
// evicted engine completes on its private entry reference). Runs under
// the CI -race step.
func TestEvictionRacesInFlightRequests(t *testing.T) {
	graphs := make([]string, 6)
	lams := make([]string, len(graphs))
	for i := range graphs {
		g, err := gen.MullerPipeline(3+i, 1, 2.0+float64(i), 1.0)
		if err != nil {
			t.Fatalf("MullerPipeline: %v", err)
		}
		graphs[i] = tsgText(t, g)
	}

	// A budget that holds only a couple of these engines, forcing
	// constant eviction under the mixed traffic.
	ref := New(Config{})
	refSrv := httptest.NewServer(ref)
	for i, text := range graphs {
		var res AnalyzeResponse
		postJSON(t, refSrv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Graph: text}}, &res, http.StatusOK)
		lams[i] = res.Lambda.Text
	}
	refSrv.Close()

	s := New(Config{CacheBytes: 16 << 10})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(graphs)
				body, _ := json.Marshal(AnalyzeRequest{GraphRef: GraphRef{Graph: graphs[k]}})
				resp, err := srv.Client().Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var res AnalyzeResponse
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d graph %d: status %d", w, k, resp.StatusCode)
					return
				}
				if res.Lambda.Text != lams[k] {
					errs <- fmt.Errorf("worker %d graph %d: λ %s, want %s", w, k, res.Lambda.Text, lams[k])
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Cache().Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions under the tiny budget (stats %+v); the race this test exists for never ran", st)
	}
}
