package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestFingerprintEndpoint pins POST /v1/fingerprint: it returns the
// same fingerprint an upload would (the cluster router's placement key
// must equal the cache key) without making anything resident.
func TestFingerprintEndpoint(t *testing.T) {
	g, err := gen.MullerPipeline(4, 1, 2.0, 1.0)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	text := tsgText(t, g)

	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/v1/fingerprint", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("POST fingerprint: %v", err)
	}
	var fpr FingerprintResponse
	if err := json.NewDecoder(resp.Body).Decode(&fpr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint: status %d", resp.StatusCode)
	}
	if fpr.Fingerprint != sg.Fingerprint(g) {
		t.Fatalf("fingerprint %s != structural %s", fpr.Fingerprint, sg.Fingerprint(g))
	}
	if fpr.Events != g.NumEvents() || fpr.Arcs != g.NumArcs() {
		t.Fatalf("summary %d events/%d arcs, want %d/%d", fpr.Events, fpr.Arcs, g.NumEvents(), g.NumArcs())
	}
	// Parse-only: nothing compiled, nothing resident.
	if st := s.Cache().Stats(); st.Entries != 0 || st.Compiles != 0 {
		t.Fatalf("fingerprint made state resident: %+v", st)
	}

	// The JSON body form works too.
	body, _ := json.Marshal(map[string]string{"graph": text})
	resp, err = srv.Client().Post(srv.URL+"/v1/fingerprint", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST fingerprint JSON: %v", err)
	}
	var fpr2 FingerprintResponse
	if err := json.NewDecoder(resp.Body).Decode(&fpr2); err != nil {
		t.Fatalf("decoding JSON form: %v", err)
	}
	resp.Body.Close()
	if fpr2.Fingerprint != fpr.Fingerprint {
		t.Fatalf("JSON form fingerprint %s != raw form %s", fpr2.Fingerprint, fpr.Fingerprint)
	}

	// Garbage answers 400.
	resp, err = srv.Client().Post(srv.URL+"/v1/fingerprint", "text/plain", strings.NewReader("not a tsg file"))
	if err != nil {
		t.Fatalf("POST bad fingerprint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad graph fingerprint: status %d, want 400", resp.StatusCode)
	}
}

// TestFingerprintWorksInPassThroughMode pins that /v1/fingerprint
// stays available with the cache disabled — it needs no resident
// state, unlike uploads/edits which refuse in that mode.
func TestFingerprintWorksInPassThroughMode(t *testing.T) {
	g, err := gen.MullerPipeline(3, 1, 2.0, 1.0)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	s := New(Config{CacheBytes: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/fingerprint", "text/plain", strings.NewReader(tsgText(t, g)))
	if err != nil {
		t.Fatalf("POST fingerprint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint in pass-through mode: status %d, want 200", resp.StatusCode)
	}
}

// TestPassThroughRefusalsCarryRetryAfter pins that EVERY 503 the
// server emits carries a Retry-After hint — including the
// pass-through-mode upload/edit refusals, which historically missed it
// (only admission sheds set the header). The client's retry loop and
// the cluster router's backoff both key on the hint.
func TestPassThroughRefusalsCarryRetryAfter(t *testing.T) {
	g, err := gen.MullerPipeline(3, 1, 2.0, 1.0)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	text := tsgText(t, g)
	s := New(Config{CacheBytes: -1})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Upload refusal.
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("POST graphs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pass-through upload: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("pass-through upload 503 missing Retry-After")
	}

	// Edit refusal.
	body, _ := json.Marshal(EditRequest{GraphRef: GraphRef{Graph: text}, Edits: []DelayEdit{{Arc: 0, Delay: 1}}})
	resp, err = srv.Client().Post(srv.URL+"/v1/edit", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST edit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pass-through edit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("pass-through edit 503 missing Retry-After")
	}
}
