package serve

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsg/internal/dist"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

// ringGraph builds a distinct 3-event ring whose delays depend on k,
// so each k yields a distinct fingerprint.
func ringGraph(t testing.TB, k int) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder(fmt.Sprintf("ring%d", k)).
		Events("x+", "y+", "z+").
		Arc("x+", "y+", float64(k+1)).
		Arc("y+", "z+", 1).
		Arc("z+", "x+", 1, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func pointModel(t testing.TB, g *sg.Graph) *dist.Model {
	t.Helper()
	nominal := make([]float64, g.NumArcs())
	for i := range nominal {
		nominal[i] = g.Arc(i).Delay
	}
	m, err := dist.NewModel(nominal)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestCacheHitAndSharing(t *testing.T) {
	c := NewCache(DefaultCacheBytes)
	g := ringGraph(t, 0)
	key := ContentKey(g, nil)
	build := func() (*sg.Graph, *dist.Model, error) { return g, pointModel(t, g), nil }

	e1, hit, err := c.GetOrCompile(context.Background(), key, build)
	if err != nil {
		t.Fatalf("GetOrCompile: %v", err)
	}
	if hit {
		t.Fatal("first request reported a hit")
	}
	e2, hit, err := c.GetOrCompile(context.Background(), key, build)
	if err != nil {
		t.Fatalf("GetOrCompile: %v", err)
	}
	if !hit {
		t.Fatal("second request missed")
	}
	if e1 != e2 || e1.Engine != e2.Engine {
		t.Fatal("second request did not share the compiled engine")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Compiles != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 compile / 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("cache bytes = %d, want positive", st.Bytes)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(DefaultCacheBytes)
	g := ringGraph(t, 1)
	key := ContentKey(g, nil)

	var builds atomic.Int64
	started := make(chan struct{})
	gate := make(chan struct{})
	build := func() (*sg.Graph, *dist.Model, error) {
		builds.Add(1)
		close(started)
		<-gate // hold the builder until every joiner is in flight
		return g, pointModel(t, g), nil
	}

	const clients = 16
	var wg sync.WaitGroup
	engines := make([]*Entry, clients)
	errs := make([]error, clients)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engines[i], _, errs[i] = c.GetOrCompile(context.Background(), key, build)
		}()
	}
	// Deterministic rendezvous: the first client registers the flight
	// and blocks in build; the joiners then enter while it is pending
	// (each bumps FlightShared before waiting), and only then is the
	// builder released.
	launch(0)
	<-started
	for i := 1; i < clients; i++ {
		launch(i)
	}
	for start := time.Now(); c.Stats().FlightShared < clients-1; {
		if time.Since(start) > 10*time.Second {
			t.Fatalf("joiners never registered: %+v", c.Stats())
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if engines[i] == nil || engines[i].Engine != engines[0].Engine {
			t.Fatalf("client %d got a different engine", i)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d compiles for %d concurrent first requests, want exactly 1 (singleflight)", n, clients)
	}
	st := c.Stats()
	if st.Compiles != 1 {
		t.Fatalf("stats report %d compiles, want 1", st.Compiles)
	}
	if st.FlightShared != clients-1 {
		t.Fatalf("stats report %d shared flights, want %d", st.FlightShared, clients-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget for roughly two small engines: inserting a third must
	// evict the least recently used.
	g0, g1, g2 := ringGraph(t, 0), ringGraph(t, 1), ringGraph(t, 2)
	probe := NewCache(DefaultCacheBytes)
	ent, _, err := probe.GetOrCompile(context.Background(), ContentKey(g0, nil), func() (*sg.Graph, *dist.Model, error) {
		return g0, pointModel(t, g0), nil
	})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	c := NewCache(ent.cost*2 + ent.cost/2)

	add := func(g *sg.Graph) string {
		key := ContentKey(g, nil)
		if _, _, err := c.GetOrCompile(context.Background(), key, func() (*sg.Graph, *dist.Model, error) {
			return g, pointModel(t, g), nil
		}); err != nil {
			t.Fatalf("GetOrCompile: %v", err)
		}
		return key
	}
	k0 := add(g0)
	k1 := add(g1)
	// Touch g0 so g1 is the LRU victim.
	if ent := c.Get(k0); ent == nil {
		t.Fatal("g0 missing before eviction")
	}
	add(g2)

	if c.Get(k1) != nil {
		t.Fatal("LRU entry survived over budget")
	}
	if c.Get(k0) == nil {
		t.Fatal("recently used entry was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestCachePassThroughMode(t *testing.T) {
	c := NewCache(0)
	g := ringGraph(t, 3)
	key := ContentKey(g, nil)
	build := func() (*sg.Graph, *dist.Model, error) { return g, pointModel(t, g), nil }
	e1, hit1, err := c.GetOrCompile(context.Background(), key, build)
	if err != nil {
		t.Fatalf("GetOrCompile: %v", err)
	}
	e2, hit2, err := c.GetOrCompile(context.Background(), key, build)
	if err != nil {
		t.Fatalf("GetOrCompile: %v", err)
	}
	if hit1 || hit2 {
		t.Fatal("pass-through cache reported a hit")
	}
	if e1.Engine == e2.Engine {
		t.Fatal("pass-through cache shared an engine")
	}
	if st := c.Stats(); st.Entries != 0 || st.Compiles != 2 {
		t.Fatalf("stats = %+v, want 0 entries / 2 compiles", st)
	}
}

func TestContentKeyDistinguishesModels(t *testing.T) {
	text := "tsg g\nevent a+\nevent b+\narc a+ b+ 2\narc b+ a+ 2 marked\n"
	annotated := "tsg g\nevent a+\nevent b+\narc a+ b+ 2 ~uniform(1.5,2.5)\narc b+ a+ 2 marked\n"

	gPlain, mPlain, err := netlist.ReadTSGDist(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	gAnn, mAnn, err := netlist.ReadTSGDist(strings.NewReader(annotated))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	kPlain := ContentKey(gPlain, mPlain)
	kAnn := ContentKey(gAnn, mAnn)
	if kPlain == kAnn {
		t.Fatal("distribution annotations did not change the content key")
	}
	// A deterministic model keys on the bare structural fingerprint, so
	// clients can compute it locally via tsg.Fingerprint.
	if kPlain != sg.Fingerprint(gPlain) {
		t.Fatal("deterministic content key differs from the structural fingerprint")
	}
	// Same annotated content in a different declaration order shares
	// the key.
	reordered := "tsg g\nevent b+\nevent a+\narc b+ a+ 2 marked\narc a+ b+ 2 ~uniform(1.5,2.5)\n"
	gRe, mRe, err := netlist.ReadTSGDist(strings.NewReader(reordered))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	if ContentKey(gRe, mRe) != kAnn {
		t.Fatal("annotated content key is not declaration-order invariant")
	}
}

func TestContentKeyUnambiguous(t *testing.T) {
	// Swapping the distributions of two annotated arcs must change the
	// key: a Monte-Carlo answer is a function of which arc carries
	// which distribution, not just the multiset of annotations.
	a := "tsg g\nevent x\nevent y\nevent z\narc x y 2 ~uniform(0,4)\narc y z 2 ~uniform(1,3)\narc z x 2 marked\n"
	b := "tsg g\nevent x\nevent y\nevent z\narc x y 2 ~uniform(1,3)\narc y z 2 ~uniform(0,4)\narc z x 2 marked\n"
	ga, ma, err := netlist.ReadTSGDist(strings.NewReader(a))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	gb, mb, err := netlist.ReadTSGDist(strings.NewReader(b))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	if ContentKey(ga, ma) == ContentKey(gb, mb) {
		t.Fatal("swapped distributions share a content key")
	}

	// Event names may contain any non-whitespace byte, including
	// would-be field separators; the length-prefixed encoding must keep
	// ("x|y" -> "z") and ("x" -> "y|z") distinct.
	c := "tsg g\nevent x|y\nevent z\narc x|y z 2 ~uniform(1,3)\narc z x|y 2 marked\n"
	d := "tsg g\nevent x\nevent y|z\narc x y|z 2 ~uniform(1,3)\narc y|z x 2 marked\n"
	gc, mc, err := netlist.ReadTSGDist(strings.NewReader(c))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	gd, md, err := netlist.ReadTSGDist(strings.NewReader(d))
	if err != nil {
		t.Fatalf("ReadTSGDist: %v", err)
	}
	if ContentKey(gc, mc) == ContentKey(gd, md) {
		t.Fatal("separator-bearing event names collide in the content key")
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	// Race smoke over hits, misses, evictions and singleflight at once;
	// runs under the CI race step.
	c := NewCache(1 << 20) // small budget: forces evictions
	graphs := make([]*sg.Graph, 6)
	keys := make([]string, 6)
	for i := range graphs {
		graphs[i] = ringGraph(t, i)
		keys[i] = ContentKey(graphs[i], nil)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w + i) % len(graphs)
				ent, _, err := c.GetOrCompile(context.Background(), keys[k], func() (*sg.Graph, *dist.Model, error) {
					return graphs[k], pointModel(t, graphs[k]), nil
				})
				if err != nil {
					t.Errorf("GetOrCompile: %v", err)
					return
				}
				if _, err := ent.Engine.Analyze(); err != nil {
					t.Errorf("Analyze: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
