package serve

import "tsg/internal/obs"

// Pre-interned span names, tiers and annotation keys for the serving
// layer's per-request spans (the serve.<endpoint> roots live on
// telemetry.rootNames). Interning once at init keeps the request hot
// path free of intern-table lookups.
var (
	nameAdmissionWait = obs.N("admission.wait")
	nameCacheLookup   = obs.N("cache.lookup")
	nameCacheCompile  = obs.N("cache.compile")
	nameWALAppend     = obs.N("wal.append")

	tierShed = obs.N("shed")
	tierHit  = obs.N("hit")
	tierMiss = obs.N("miss")

	keyBytes = obs.N("bytes")
	keyEdits = obs.N("edits")
)
