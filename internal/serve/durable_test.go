package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tsg/internal/gen"
	"tsg/internal/store"
)

// durableServer boots a Server over a WAL in dir, replaying whatever
// the log holds.
func durableServer(t testing.TB, dir string, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st, rec, err := store.Open(dir, store.Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg.Store = st
	s := New(cfg)
	if err := s.Recover(rec); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, st
}

// TestDurableRestartRecoversStateExactly is the in-process form of the
// CHAOS durability gate: upload + edit against a durable server, drop
// the server (its store simulates a crash), boot a fresh server on the
// same log, and require the recovered λ — and the dedupe table — to be
// bit-identical to the pre-crash state.
func TestDurableRestartRecoversStateExactly(t *testing.T) {
	dir := t.TempDir()
	g := gen.Oscillator()
	text := tsgText(t, g)

	s1, st1 := durableServer(t, dir, Config{})
	srv1 := httptest.NewServer(s1)

	var up UploadResponse
	resp, err := srv1.Client().Post(srv1.URL+"/v1/graphs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decode upload: %v", err)
	}
	resp.Body.Close()

	var ed1, ed2 EditResponse
	postJSON(t, srv1, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 0, Delay: 9.25}},
		Client:   "cli-a", Seq: 1,
	}, &ed1, http.StatusOK)
	postJSON(t, srv1, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 1, Delay: 4.5}},
		Client:   "cli-a", Seq: 2,
	}, &ed2, http.StatusOK)
	if ed1.Deduped || ed2.Deduped {
		t.Fatal("fresh edits reported deduped")
	}
	srv1.Close()
	st1.Close() // crash stand-in: the log's acknowledged records are already fsync'd

	// Restart on the same data-dir.
	s2, st2 := durableServer(t, dir, Config{})
	defer st2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()

	graphs, edits := s2.WarmRestartCounts()
	if graphs != 1 || edits != 2 {
		t.Fatalf("warm restart recovered %d graphs / %d edits, want 1/2", graphs, edits)
	}
	// The recovered session answers by fingerprint — no re-upload — with
	// λ exactly equal to the pre-crash edited baseline.
	var an AnalyzeResponse
	postJSON(t, srv2, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &an, http.StatusOK)
	if an.Lambda.Text != ed2.Lambda.Text || an.Lambda.Float != ed2.Lambda.Float {
		t.Fatalf("recovered λ %+v != pre-crash λ %+v", an.Lambda, ed2.Lambda)
	}
	// The dedupe table survived: a retry of seq 2 across the restart
	// must not re-apply.
	var ed3 EditResponse
	postJSON(t, srv2, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 1, Delay: 4.5}},
		Client:   "cli-a", Seq: 2,
	}, &ed3, http.StatusOK)
	if !ed3.Deduped || ed3.Applied != 0 {
		t.Fatalf("cross-restart retry not deduped: %+v", ed3)
	}
	if ed3.Lambda.Text != ed2.Lambda.Text {
		t.Fatalf("deduped retry λ %s != original %s", ed3.Lambda.Text, ed2.Lambda.Text)
	}
	// /metrics exposes the warm-restart path (the CI crash smoke greps
	// this line).
	mresp, err := srv2.Client().Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "tsgserve_warm_restart_graphs_total 1") {
		t.Fatalf("metrics missing warm restart counter:\n%s", mb)
	}
}

// TestEditDedupeExactlyOnce: a duplicate (client, seq) within one
// server's lifetime applies exactly once, and a WAL append failure
// (injected crash) is a 500 with nothing applied — never an
// acknowledged-but-lost edit.
func TestEditDedupeExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	g := gen.Oscillator()
	s, st := durableServer(t, dir, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var up UploadResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}}, &up, http.StatusOK)
	req := EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 0, Delay: 7.5}},
		Client:   "c", Seq: 1,
	}
	var first, dup EditResponse
	postJSON(t, srv, "/v1/edit", req, &first, http.StatusOK)
	postJSON(t, srv, "/v1/edit", req, &dup, http.StatusOK)
	if first.Deduped || !dup.Deduped {
		t.Fatalf("dedupe flags: first %v dup %v", first.Deduped, dup.Deduped)
	}
	if dup.Lambda.Text != first.Lambda.Text {
		t.Fatalf("duplicate λ %s != original %s", dup.Lambda.Text, first.Lambda.Text)
	}

	// Stamp validation.
	postJSON(t, srv, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 0, Delay: 1}},
		Client:   "c", // Seq 0
	}, nil, http.StatusBadRequest)
	postJSON(t, srv, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 0, Delay: 1}},
		Seq:      3, // no client
	}, nil, http.StatusBadRequest)

	// An injected WAL crash: the edit must fail (500), not apply, and
	// not advance the seq table.
	st.Arm(store.FailBeforeWrite)
	postJSON(t, srv, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Edits:    []DelayEdit{{Arc: 1, Delay: 2.25}},
		Client:   "c", Seq: 2,
	}, nil, http.StatusInternalServerError)
	var an AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &an, http.StatusOK)
	if an.Lambda.Text != first.Lambda.Text {
		t.Fatalf("failed durable edit changed λ: %s -> %s", first.Lambda.Text, an.Lambda.Text)
	}
}

// TestInlineEditPersistsCanonicalBody: an edit against an inline-only
// graph (never uploaded) must log a canonical body first, so the edit
// survives restart.
func TestInlineEditPersistsCanonicalBody(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.MullerRing(4)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	text := tsgText(t, g)

	s1, st1 := durableServer(t, dir, Config{})
	srv1 := httptest.NewServer(s1)
	var ed EditResponse
	postJSON(t, srv1, "/v1/edit", EditRequest{
		GraphRef: GraphRef{Graph: text}, // inline, no prior upload
		Edits:    []DelayEdit{{Arc: 2, Delay: 6.5}},
		Client:   "c", Seq: 1,
	}, &ed, http.StatusOK)
	srv1.Close()
	st1.Close()

	s2, st2 := durableServer(t, dir, Config{})
	defer st2.Close()
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	var an AnalyzeResponse
	postJSON(t, srv2, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: ed.Fingerprint}}, &an, http.StatusOK)
	if an.Lambda.Text != ed.Lambda.Text {
		t.Fatalf("recovered inline-edit λ %s != pre-crash %s", an.Lambda.Text, ed.Lambda.Text)
	}
}

// TestAdmissionControlSheds: saturate a 1-slot endpoint and require
// clean 503s with Retry-After for the overflow, while admitted
// requests still succeed.
func TestAdmissionControlSheds(t *testing.T) {
	g := gen.Oscillator()
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1, RequestTimeout: 30 * time.Second})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var up UploadResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}}, &up, http.StatusOK)

	// Hold the single MC slot with a long request, then overflow the
	// queue. MC with many samples on 1 worker is slow enough to hold.
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(MCRequest{
			GraphRef: GraphRef{Fingerprint: up.Fingerprint},
			Samples:  2000000, Jitter: 0.2, Workers: 1,
		})
		resp, err := srv.Client().Post(srv.URL+"/v1/mc", "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait for the holder to occupy the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.limits[epMC].waiters.Load() == 0 && len(s.limits[epMC].sem) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Fire a burst: with 1 running + 1 queue slot, at least one of
	// these three must shed with 503 + Retry-After.
	var mu sync.Mutex
	sheds := 0
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(MCRequest{
				GraphRef: GraphRef{Fingerprint: up.Fingerprint},
				Samples:  2000000, Jitter: 0.2, Workers: 1,
			})
			resp, err := srv.Client().Post(srv.URL+"/v1/mc", "application/json", strings.NewReader(string(body)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
				mu.Lock()
				sheds++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatal("burst past capacity shed nothing")
	}
	<-done
	// Shed counters are exported.
	var total int64
	for r := 0; r < shedReasons; r++ {
		total += s.sheds[epMC][r].Load()
	}
	if total == 0 {
		t.Fatal("sheds not counted")
	}
	// The endpoint still serves once the load drains.
	var an AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &an, http.StatusOK)
}

// TestRequestDeadlineCancelsMC: a server-imposed deadline must stop a
// long Monte-Carlo run and answer 503 + Retry-After, and the engine
// must remain usable.
func TestRequestDeadlineCancelsMC(t *testing.T) {
	g := gen.Oscillator()
	s := New(Config{RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var up UploadResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}}, &up, http.StatusOK)

	body, _ := json.Marshal(MCRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Samples:  50_000_000, Jitter: 0.2, Workers: 1,
	})
	startT := time.Now()
	resp, err := srv.Client().Post(srv.URL+"/v1/mc", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bust MC answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 without Retry-After")
	}
	if el := time.Since(startT); el > 5*time.Second {
		t.Fatalf("cancellation took %v — cooperative checks not firing", el)
	}
	// Session unharmed.
	var an AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &an, http.StatusOK)
}

// TestPanicRecoveryMiddleware: a panicking handler answers 500 and
// bumps tsgserve_panics_total; the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/boom")
	if err != nil {
		t.Fatalf("boom: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic answered %d, want 500", resp.StatusCode)
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", s.panics.Load())
	}
	// Still alive, and the counter is exported.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics after panic: %v", err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "tsgserve_panics_total 1") {
		t.Fatal("metrics missing tsgserve_panics_total 1")
	}
}
