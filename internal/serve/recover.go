package serve

import (
	"context"
	"fmt"
	"log"

	"tsg/internal/store"
)

// Recover replays a write-ahead log recovery into the server: every
// persisted graph body is re-parsed and recompiled into the engine
// cache, every committed edit is re-applied to its engine in log
// order, and the exactly-once (client, seq) table is rebuilt. A node
// killed mid-traffic and rebooted on the same data-dir therefore
// comes back with its whole working set — same fingerprints, same
// edited baselines, λ bit-identical to an uninterrupted run (replay
// applies the same canonical-rank delay assignments to the same
// compiled kernel; the CHAOS experiment gates on exact rational
// equality).
//
// Recovery is resilient by design: a record that no longer replays —
// unparseable body, fingerprint mismatch, an edit for a graph that
// failed recovery — is logged and skipped, never fatal. Losing one
// graph to corruption must not take down the node and the rest of its
// working set. Recovered compiles and edits are counted separately
// (tsgserve_warm_restart_* in /metrics), so operators can tell a warm
// boot's work from request traffic.
//
// Call Recover once, after New and before serving traffic.
func (s *Server) Recover(rec *store.Recovery) error {
	if rec == nil {
		return nil
	}
	if s.cache.Disabled() && (len(rec.Graphs) > 0 || len(rec.Edits) > 0) {
		return fmt.Errorf("serve: cannot recover %d graphs / %d edits into a disabled engine cache",
			len(rec.Graphs), len(rec.Edits))
	}
	if rec.TruncatedBytes > 0 {
		log.Printf("serve: recovery dropped a torn log tail of %d bytes (the in-flight record of the crash; it was never acknowledged)", rec.TruncatedBytes)
	}
	recovered := map[string]bool{}
	for _, gb := range rec.Graphs {
		ent, hit, err := s.resolveRecovered(gb)
		if err != nil {
			log.Printf("serve: skipping logged graph %s: %v", gb.Fingerprint, err)
			continue
		}
		if !hit {
			s.warmGraphs.Add(1)
		}
		recovered[ent.Key] = true
	}
	for _, ed := range rec.Edits {
		if !recovered[ed.Fingerprint] {
			log.Printf("serve: skipping logged edit for unrecovered graph %s", ed.Fingerprint)
			continue
		}
		ent := s.cache.Get(ed.Fingerprint)
		if ent == nil {
			// Evicted between its own recovery and this edit: the cache
			// budget cannot hold the logged working set.
			log.Printf("serve: skipping logged edit for %s: evicted during recovery (cache budget too small for the logged working set)", ed.Fingerprint)
			continue
		}
		if err := s.applyRecoveredEdit(ent, ed); err != nil {
			log.Printf("serve: skipping logged edit for %s: %v", ed.Fingerprint, err)
			continue
		}
		if ed.Reset || len(ed.Edits) > 0 {
			s.warmEdits.Add(1)
		}
	}
	return nil
}

// resolveRecovered recompiles one logged graph body into the cache,
// verifying the parsed content still keys to the logged fingerprint
// (the durability invariant: the log maps fingerprints to bodies that
// produce them).
func (s *Server) resolveRecovered(gb store.GraphBody) (*Entry, bool, error) {
	ent, hit, err := s.resolve(context.Background(), GraphRef{Graph: string(gb.Body)})
	if err != nil {
		return nil, false, err
	}
	if ent.Key != gb.Fingerprint {
		return nil, false, fmt.Errorf("logged body keys to %s, not the logged fingerprint", ent.Key)
	}
	return ent, hit, nil
}

// applyRecoveredEdit re-applies one logged edit: canonical wire ranks
// map through the entry's Canon table exactly as the original request
// did, and the (client, seq) dedupe table is restored, so a client
// retrying across the restart still applies exactly once.
func (s *Server) applyRecoveredEdit(ent *Entry, ed store.Edit) error {
	if ed.Reset {
		ent.Engine.ResetDelays()
	}
	for _, d := range ed.Edits {
		if d.Arc < 0 || d.Arc >= len(ent.Canon) {
			return fmt.Errorf("logged arc rank %d out of range [0,%d)", d.Arc, len(ent.Canon))
		}
		if err := ent.Engine.SetDelay(ent.Canon[d.Arc], d.Delay); err != nil {
			return err
		}
	}
	if ed.Client != "" {
		s.editMu.Lock()
		m := s.seqs[ent.Key]
		if m == nil {
			m = map[string]uint64{}
			s.seqs[ent.Key] = m
		}
		if ed.Seq > m[ed.Client] {
			m[ed.Client] = ed.Seq
		}
		s.editMu.Unlock()
	}
	return nil
}

// WarmRestartCounts reports how many engines were recompiled and edit
// records re-applied by Recover (the daemon's boot log and the CHAOS
// experiment read them without scraping /metrics).
func (s *Server) WarmRestartCounts() (graphs, edits int64) {
	return s.warmGraphs.Load(), s.warmEdits.Load()
}
