package serve

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tsg/internal/cycletime"
	"tsg/internal/dist"
	"tsg/internal/obs"
	"tsg/internal/sg"
)

// Entry is one cached compiled session: the graph, its statistical
// delay model (all-point when the upload carried no annotations) and
// the shared engine every client of the graph queries through. The
// engine is safe for concurrent readers (cycletime's session lock
// discipline), so an Entry is handed out to request handlers without
// further locking; an entry evicted while requests still hold it stays
// valid and is collected when the last request finishes.
type Entry struct {
	// Key is the content key the entry is cached under (see ContentKey).
	Key string
	// Graph is the compiled graph; treat as read-only.
	Graph *sg.Graph
	// Model is the graph's delay model (never nil; all-point when the
	// upload had no ~ annotations).
	Model *dist.Model
	// Engine is the shared compiled session.
	Engine *cycletime.Engine

	// Canon and Rank translate between the wire protocol's canonical
	// arc indices (sg.CanonicalArcOrder — the space every structurally
	// identical graph shares, whatever its declaration order) and this
	// entry's graph: Canon[k] is the entry arc at canonical rank k,
	// Rank[i] the canonical rank of entry arc i. Requests arrive in
	// canonical space and responses leave in it, so a client whose
	// .tsg declares the arcs in a different order than the cached
	// upload still reads every index correctly.
	Canon []int
	Rank  []int

	cost   int64        // current byte charge; guarded by the cache mutex
	access atomic.Int64 // hits since insert, counted outside the cache mutex
	elem   *list.Element

	// Observability accounting, per entry so eviction naturally bounds
	// it: requests served against this graph, and per-arc touch counts
	// of the what-if/edit traffic (canonical ranks — the wire space).
	reqs  atomic.Int64
	hotMu sync.Mutex
	hot   map[int]int64
	// obsGraph caches the tracer's interned id of Key (0 = not yet
	// interned), so per-request span attribution is an atomic load
	// instead of an intern-table hit.
	obsGraph atomic.Uint32
}

// noteRequest ticks the entry's request counter (one per resolved
// request referencing this graph).
func (e *Entry) noteRequest() { e.reqs.Add(1) }

// Requests reports how many resolved requests referenced this entry.
func (e *Entry) Requests() int64 { return e.reqs.Load() }

// CostBytes reports the entry's last byte-charge estimate (racy read —
// diagnostics only).
func (e *Entry) CostBytes() int64 { return atomic.LoadInt64(&e.cost) }

// touchArc counts one what-if or edit touching the canonical arc rank.
func (e *Entry) touchArc(arc int) {
	e.hotMu.Lock()
	if e.hot == nil {
		e.hot = make(map[int]int64)
	}
	e.hot[arc]++
	e.hotMu.Unlock()
}

// hotSummary copies the per-arc touch counts and their total.
func (e *Entry) hotSummary() (map[int]int64, int64) {
	e.hotMu.Lock()
	defer e.hotMu.Unlock()
	out := make(map[int]int64, len(e.hot))
	var total int64
	for a, n := range e.hot {
		out[a] = n
		total += n
	}
	return out, total
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Entries and Bytes describe the current residency.
	Entries int
	Bytes   int64
	// Hits counts requests served by a resident engine; Misses counts
	// requests that had to compile (or join an in-flight compile).
	Hits, Misses int64
	// Compiles counts engines actually built — under singleflight many
	// concurrent misses share one compile, so Compiles <= Misses.
	Compiles int64
	// FlightShared counts misses that joined another request's
	// in-flight compile instead of building their own.
	FlightShared int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
}

// Cache is the engine cache: an LRU bounded by total estimated bytes
// (each entry costs its engine's SizeHint plus graph overhead) with
// singleflight compile deduplication — concurrent first requests for
// the same key trigger exactly one compile; the rest wait and share
// the result.
//
// A Cache with maxBytes <= 0 is a pass-through: nothing is stored and
// nothing is deduplicated, so every request pays the full parse +
// compile cost. The load experiments use that mode as the cold
// (per-request rebuild) baseline.
type Cache struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*Entry
	ll      *list.List // front = most recently used
	bytes   int64
	flight  map[string]*flightCall

	hits, misses, compiles, shared, evictions atomic.Int64
}

// flightCall is one in-flight compile other requests can join.
type flightCall struct {
	wg  sync.WaitGroup
	ent *Entry
	err error
}

// costRefreshEvery bounds how stale an entry's cost estimate may get:
// engines grow as certificates and what-if rows build up, so the hint
// is re-read every this many hits (an O(m) walk — negligible against
// the requests that caused the growth).
const costRefreshEvery = 128

// Disabled reports whether the cache is in pass-through mode (nothing
// stored, every request compiles). The server rejects fingerprint
// uploads in that mode — a returned fingerprint would 404 on its very
// next use.
func (c *Cache) Disabled() bool { return c.maxBytes <= 0 }

// NewCache returns an engine cache bounded by maxBytes of estimated
// engine memory. maxBytes <= 0 disables caching entirely.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*Entry{},
		ll:       list.New(),
		flight:   map[string]*flightCall{},
	}
}

// newEntry compiles a graph + model into a cache entry. The compile is
// recorded as a cache.compile span (nesting the engine.compile phase)
// when a tracer rides ctx.
func newEntry(ctx context.Context, key string, g *sg.Graph, m *dist.Model) (*Entry, error) {
	ctx, sp := obs.StartN(ctx, nameCacheCompile)
	defer sp.End()
	eng, err := cycletime.NewEngineOptsCtx(ctx, g, cycletime.Options{})
	if err != nil {
		return nil, err
	}
	canon := sg.CanonicalArcOrder(g)
	rank := make([]int, len(canon))
	for k, i := range canon {
		rank[i] = k
	}
	ent := &Entry{Key: key, Graph: g, Model: m, Engine: eng, Canon: canon, Rank: rank}
	ent.cost = ent.estimateCost()
	return ent, nil
}

// estimateCost is the entry's byte charge: the engine's size hint plus
// the graph and model the entry keeps alive.
func (e *Entry) estimateCost() int64 {
	n, m := int64(e.Graph.NumEvents()), int64(e.Graph.NumArcs())
	return e.Engine.SizeHint() + n*96 + m*112 // graph events/arcs/CSR + model columns
}

// GetOrCompile returns the entry for key, compiling it with build —
// a (graph, model) producer — when absent. hit reports whether a
// resident engine served the request (joining an in-flight compile
// counts as a miss). The compile runs outside the cache lock, so slow
// compiles never block hits on other keys.
func (c *Cache) GetOrCompile(ctx context.Context, key string, build func() (*sg.Graph, *dist.Model, error)) (ent *Entry, hit bool, err error) {
	if c.maxBytes <= 0 {
		// Pass-through mode: the cold baseline. Every request compiles.
		c.misses.Add(1)
		g, m, err := build()
		if err != nil {
			return nil, false, err
		}
		ent, err := newEntry(ctx, key, g, m)
		if err == nil {
			c.compiles.Add(1)
		}
		return ent, false, err
	}

	c.mu.Lock()
	if ent := c.entries[key]; ent != nil {
		c.ll.MoveToFront(ent.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		c.maybeRefreshCost(ent)
		return ent, true, nil
	}
	if cl := c.flight[key]; cl != nil {
		c.mu.Unlock()
		c.misses.Add(1)
		c.shared.Add(1)
		cl.wg.Wait()
		return cl.ent, false, cl.err
	}
	cl := &flightCall{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.mu.Unlock()
	c.misses.Add(1)

	g, m, err := build()
	if err == nil {
		cl.ent, cl.err = newEntry(ctx, key, g, m)
		if cl.err == nil {
			c.compiles.Add(1)
		}
	} else {
		cl.err = err
	}

	c.mu.Lock()
	delete(c.flight, key)
	if cl.err == nil {
		c.insert(cl.ent)
	}
	c.mu.Unlock()
	cl.wg.Done()
	return cl.ent, false, cl.err
}

// Get returns the resident entry for key, or nil. Fingerprint-only
// requests use it: a miss is a client error (the graph was never
// uploaded or has been evicted), not a compile trigger.
func (c *Cache) Get(key string) *Entry {
	c.mu.Lock()
	ent := c.entries[key]
	if ent != nil {
		c.ll.MoveToFront(ent.elem)
	}
	c.mu.Unlock()
	if ent != nil {
		c.hits.Add(1)
		c.maybeRefreshCost(ent)
	}
	return ent
}

// maybeRefreshCost re-reads an entry's cost estimate every
// costRefreshEvery hits. The estimate blocks on the engine's shared
// session lock (SizeHint), so it runs strictly outside the cache
// mutex: a long exclusive engine operation (a big Monte-Carlo run)
// may delay this one request's refresh, but never stalls the cache —
// and with it every other graph's traffic.
func (c *Cache) maybeRefreshCost(ent *Entry) {
	if ent.access.Add(1)%costRefreshEvery != 0 {
		return
	}
	nc := ent.estimateCost()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[ent.Key] != ent { // evicted meanwhile
		return
	}
	c.bytes += nc - ent.cost
	ent.cost = nc
	c.evictLocked(ent)
}

// insert adds a compiled entry and evicts LRU entries while the byte
// budget is exceeded. The newest entry is never evicted by its own
// insert — a single oversized graph still gets served, it just owns
// the whole budget until the next insert. Callers hold c.mu.
func (c *Cache) insert(ent *Entry) {
	if old := c.entries[ent.Key]; old != nil {
		// Unreachable under the singleflight invariant — a flight for a
		// key is only registered while no entry exists, and at most one
		// flight per key is live — kept purely as defence against a
		// future restructuring inserting from a second path.
		return
	}
	ent.elem = c.ll.PushFront(ent)
	c.entries[ent.Key] = ent
	c.bytes += ent.cost
	c.evictLocked(ent)
}

// evictLocked drops LRU entries until the budget holds, never evicting
// keep. Callers hold c.mu.
func (c *Cache) evictLocked(keep *Entry) {
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		tail := c.ll.Back()
		victim := tail.Value.(*Entry)
		if victim == keep {
			break
		}
		c.ll.Remove(tail)
		delete(c.entries, victim.Key)
		c.bytes -= victim.cost
		c.evictions.Add(1)
	}
}

// AggregateEngineStats sums the query counters of every resident
// engine — the serving layer's view of how much analysis work was
// simulated in full versus answered by incremental dirty-cone
// patching or the certificate fast paths. Counters of evicted engines
// leave the aggregate, so expose it as a gauge, not a counter. Engine
// stats are read outside the cache mutex (they take each engine's
// session lock).
func (c *Cache) AggregateEngineStats() cycletime.EngineStats {
	c.mu.Lock()
	engines := make([]*cycletime.Engine, 0, len(c.entries))
	for _, ent := range c.entries {
		engines = append(engines, ent.Engine)
	}
	c.mu.Unlock()
	var out cycletime.EngineStats
	for _, eng := range engines {
		st := eng.Stats()
		out.Analyses += st.Analyses
		out.IncrementalAnalyses += st.IncrementalAnalyses
		out.FastPathHits += st.FastPathHits
		out.TableAnswers += st.TableAnswers
		out.WindowedPass1 += st.WindowedPass1
		out.SlabPass1 += st.SlabPass1
		out.PatchFloods += st.PatchFloods
		out.LazyPass2Skips += st.LazyPass2Skips
		out.Pass2Runs += st.Pass2Runs
	}
	return out
}

// Resident snapshots the resident entries in LRU order (most recently
// used first) for the debug endpoints and per-graph metrics.
func (c *Cache) Resident() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry))
	}
	return out
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Entries:      entries,
		Bytes:        bytes,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Compiles:     c.compiles.Load(),
		FlightShared: c.shared.Load(),
		Evictions:    c.evictions.Load(),
	}
}

// ContentKey is the cache key of a (graph, model) pair: the structural
// fingerprint (sg.Fingerprint — invariant under declaration order,
// display name excluded) for deterministic models, extended with a
// canonical hash of the distribution annotations when the model is
// statistical. Graphs that differ only in their ~dist/@group
// annotations therefore get distinct engines — a Monte-Carlo answer is
// a function of the distributions, not just the nominal delays — while
// the common un-annotated interactive case keys on the public
// tsg.Fingerprint, which clients can compute locally.
func ContentKey(g *sg.Graph, m *dist.Model) string {
	fp := sg.Fingerprint(g)
	if m == nil || m.Deterministic() {
		return fp
	}
	// One record per arc, every field length-prefixed so the encoding
	// is unambiguous (event names may contain any non-whitespace byte,
	// including would-be separators); records sort by their encoded
	// bytes, and correlation groups are renumbered by first appearance
	// in sorted order, so the key is invariant under declaration order
	// and group id assignment (up to identical-record ties).
	var scratch [8]byte
	putStr := func(b []byte, f string) []byte {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(f)))
		b = append(b, scratch[:]...)
		return append(b, f...)
	}
	type rec struct {
		enc []byte
		gid int
	}
	recs := make([]rec, g.NumArcs())
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		var b []byte
		b = putStr(b, g.Event(a.From).Name)
		b = putStr(b, g.Event(a.To).Name)
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(a.Delay))
		b = append(b, scratch[:]...)
		b = putStr(b, m.Dist(i).String())
		recs[i] = rec{enc: b, gid: m.Group(i)}
	}
	// Ties between byte-identical records keep declaration order
	// (stable sort). When such ties belong to DIFFERENT correlation
	// groups — parallel arcs with identical endpoints, delay and
	// distribution but distinct @group tags — the group renumbering
	// below can depend on the declaration order, so two orderings of
	// that degenerate graph may key separately. The only consequence is
	// a second compiled engine (reduced sharing), never a wrong answer:
	// each key still identifies its exact (graph, model) content.
	sort.SliceStable(recs, func(i, j int) bool { return bytes.Compare(recs[i].enc, recs[j].enc) < 0 })
	rank := map[int]int{}
	h := sha256.New()
	h.Write([]byte(fp))
	var buf [8]byte
	for _, r := range recs {
		h.Write(r.enc)
		k := -1
		if r.gid >= 0 {
			var ok bool
			k, ok = rank[r.gid]
			if !ok {
				k = len(rank)
				rank[r.gid] = k
			}
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(k+1))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
