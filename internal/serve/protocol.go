// Package serve turns the engine session layer into shared serving
// infrastructure: an LRU-bounded engine cache keyed by canonical graph
// fingerprints, singleflight compile deduplication so concurrent first
// requests for a graph trigger exactly one compile, and a JSON-over-
// HTTP protocol for the paper's interactive queries — analyze, slacks,
// batched what-ifs, Monte-Carlo, committed edits (POST /v1/edit, the
// edit→analyze loop on a shared session) — so thousands of clients
// asking about the same graph share one compiled engine and its warm
// certificate.
// cmd/tsgserved wraps the handler in a daemon; the client package
// speaks the protocol from Go.
//
// The protocol: every query request references its graph either by
// inline .tsg text ("graph") or by the fingerprint of a previously
// uploaded graph ("fingerprint"). Responses always carry the
// fingerprint, so a client can upload once (POST /v1/graphs, raw .tsg
// body) and switch to cheap fingerprint references for the rest of the
// session — the cache makes those requests share the compiled engine
// and its cached analysis across every client of the graph.
//
// Arc indices on the wire — WhatIfQuery.Arc, ArcSlack.Arc,
// CriticalCycle.Arcs, the MCResponse.Criticality array — are CANONICAL
// ranks (sg.CanonicalArcOrder / tsg.CanonicalArcOrder), not
// declaration-order indices. The fingerprint is deliberately invariant
// under declaration order, so two clients holding the same graph in
// different arc orders share one cached engine; the canonical rank is
// the index space they also share, computable by each side from its
// own copy alone. The client package's ArcMap translates between a
// local graph's declaration order and the wire space.
package serve

// GraphRef references the graph a query runs against: inline .tsg text
// (which may carry ~dist/@group statistical annotations) or the
// fingerprint of a graph the server already holds. Exactly one must be
// set; inline text wins when both are.
type GraphRef struct {
	// Graph is the full .tsg text of the graph.
	Graph string `json:"graph,omitempty"`
	// Fingerprint is the content key of a previously uploaded graph as
	// returned in any response's "fingerprint" field. For graphs
	// without statistical annotations it equals tsg.Fingerprint, so
	// clients can compute it locally.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Lambda is a cycle time on the wire: the exact rational plus float and
// display forms.
type Lambda struct {
	Num   float64 `json:"num"`
	Den   int     `json:"den"`
	Float float64 `json:"float"`
	Text  string  `json:"text"`
}

// CriticalCycle is one critical cycle on the wire, events by name.
type CriticalCycle struct {
	Events []string `json:"events"`
	Arcs   []int    `json:"arcs"`
	Length float64  `json:"length"`
	Period int      `json:"period"`
}

// AnalyzeRequest asks for the cycle time and critical cycles.
type AnalyzeRequest struct {
	GraphRef
}

// AnalyzeResponse is the outcome of POST /v1/analyze.
type AnalyzeResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Lambda      Lambda          `json:"lambda"`
	Critical    []CriticalCycle `json:"critical"`
	// EngineCached reports whether the request was served by an engine
	// already resident in the cache (warm) rather than compiled for it.
	EngineCached bool `json:"engine_cached"`
}

// SlacksRequest asks for the per-arc timing slacks.
type SlacksRequest struct {
	GraphRef
}

// ArcSlack is one arc's slack on the wire.
type ArcSlack struct {
	Arc   int     `json:"arc"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	Delay float64 `json:"delay"`
	Slack float64 `json:"slack"`
	Tight bool    `json:"tight"`
}

// SlacksResponse is the outcome of POST /v1/slacks.
type SlacksResponse struct {
	Fingerprint string     `json:"fingerprint"`
	Lambda      Lambda     `json:"lambda"`
	Slacks      []ArcSlack `json:"slacks"`
}

// WhatIfQuery is one delay assignment of a batched what-if request:
// "what would λ be if Arc's delay were Delay".
type WhatIfQuery struct {
	Arc   int     `json:"arc"`
	Delay float64 `json:"delay"`
}

// WhatIfRequest batches what-if queries against one graph; all queries
// are answered against the graph's baseline delays (they do not
// compose), exactly like Engine.SensitivitySweep.
type WhatIfRequest struct {
	GraphRef
	Queries []WhatIfQuery `json:"queries"`
}

// EngineStats mirrors the engine's query counters on the wire.
type EngineStats struct {
	Analyses            int64 `json:"analyses"`
	IncrementalAnalyses int64 `json:"incremental_analyses"`
	FastPathHits        int64 `json:"fast_path_hits"`
	TableAnswers        int64 `json:"table_answers"`
	// Kernel-selection and laziness counters (PR 8): window vs slab
	// pass-1 runs, patch flood bail-outs, and lazy pass-2 outcomes.
	WindowedPass1  int64 `json:"windowed_pass1,omitempty"`
	SlabPass1      int64 `json:"slab_pass1,omitempty"`
	PatchFloods    int64 `json:"patch_floods,omitempty"`
	LazyPass2Skips int64 `json:"lazy_pass2_skips,omitempty"`
	Pass2Runs      int64 `json:"pass2_runs,omitempty"`
}

// WhatIfResponse is the outcome of POST /v1/whatif: one λ per query,
// in request order, plus the serving engine's cumulative statistics.
type WhatIfResponse struct {
	Fingerprint string      `json:"fingerprint"`
	Lambdas     []Lambda    `json:"lambdas"`
	Stats       EngineStats `json:"stats"`
}

// DelayEdit is one committed delay assignment of an edit request.
// Arc is a canonical rank, like every arc index on the wire.
type DelayEdit struct {
	Arc   int     `json:"arc"`
	Delay float64 `json:"delay"`
}

// EditRequest commits delay edits to the graph's resident engine —
// the server half of the paper's edit→analyze loop. Unlike what-if
// queries, edits are durable and compose: they move the session
// baseline that every later query of every client of this fingerprint
// sees, until further edits or a reset. Reset restores the engine's
// compile-time delays before the edits (if any) are applied. The
// response carries λ at the new baseline; the analysis behind it is
// incremental — the engine re-propagates only the forward cone of the
// edited arcs through its retained simulation traces.
//
// Note the fingerprint still names the graph as uploaded: an edited
// engine's current delays diverge from the upload until reset. The
// fingerprint is a session handle here, not a content proof.
type EditRequest struct {
	GraphRef
	Edits []DelayEdit `json:"edits,omitempty"`
	Reset bool        `json:"reset,omitempty"`
	// Criticals additionally returns the critical cycles at the edited
	// baseline. Off by default: extracting them forces the engine's
	// lazy pass 2 (parent-tracked winner re-simulation) on every edit,
	// while the λ-only answer keeps the loop simulation-free for
	// localized edits.
	Criticals bool `json:"criticals,omitempty"`
	// Client and Seq make the edit idempotent under retries: a request
	// stamped with a (client, seq) pair the server has already applied
	// is acknowledged without re-applying (Deduped in the response), so
	// a client that lost the response to a timeout can retry the SAME
	// request safely — it applies exactly once. Seq must be >= 1 and
	// strictly increase per (fingerprint, client); the table survives
	// server restarts when the server runs durable. Unstamped edits
	// (empty client) keep the old at-least-once behavior.
	Client string `json:"client,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
}

// EditResponse is the outcome of POST /v1/edit: λ at the edited
// baseline (plus the critical cycles when requested), and the serving
// engine's cumulative statistics (Analyses vs IncrementalAnalyses
// shows the edit being answered by dirty-cone patching rather than
// re-simulation).
type EditResponse struct {
	Fingerprint string `json:"fingerprint"`
	Applied     int    `json:"applied"`
	// Deduped reports that the request's (client, seq) stamp was already
	// applied: nothing was re-applied (Applied is 0) and Lambda is the
	// current baseline — for a genuine retry, exactly the λ the lost
	// response carried.
	Deduped  bool            `json:"deduped,omitempty"`
	Lambda   Lambda          `json:"lambda"`
	Critical []CriticalCycle `json:"critical,omitempty"`
	Stats    EngineStats     `json:"stats"`
}

// MCRequest asks for a Monte-Carlo cycle-time analysis over the
// graph's delay distributions (its ~ annotations; with none, Jitter
// applies uniform ±Jitter to every delay).
type MCRequest struct {
	GraphRef
	Samples     int       `json:"samples,omitempty"`
	MinSamples  int       `json:"min_samples,omitempty"`
	Seed        uint64    `json:"seed,omitempty"`
	Quantiles   []float64 `json:"quantiles,omitempty"`
	Tol         float64   `json:"tol,omitempty"`
	Confidence  float64   `json:"confidence,omitempty"`
	Criticality bool      `json:"criticality,omitempty"`
	// Workers bounds the engine's Monte-Carlo worker pool. Results are
	// bit-identical for a fixed (seed, workers) pair; clients needing
	// reproducibility across machines should pin it.
	Workers int `json:"workers,omitempty"`
	// Jitter applies a uniform ±Jitter fractional delay model when the
	// graph carries no distribution annotations.
	Jitter float64 `json:"jitter,omitempty"`
}

// QuantileEstimate is one λ quantile estimate on the wire. CIHalf is
// -1 when the run was too short to estimate a confidence interval
// (the in-process estimators report +Inf there, which JSON cannot
// carry); MCResponse.MeanCIHalf uses the same sentinel.
type QuantileEstimate struct {
	P      float64 `json:"p"`
	Value  float64 `json:"value"`
	CIHalf float64 `json:"ci_half"`
}

// MCResponse is the outcome of POST /v1/mc.
type MCResponse struct {
	Fingerprint string             `json:"fingerprint"`
	Samples     int                `json:"samples"`
	Converged   bool               `json:"converged"`
	Mean        float64            `json:"mean"`
	Variance    float64            `json:"variance"`
	Std         float64            `json:"std"`
	Min         float64            `json:"min"`
	Max         float64            `json:"max"`
	MeanCIHalf  float64            `json:"mean_ci_half"`
	Quantiles   []QuantileEstimate `json:"quantiles,omitempty"`
	Criticality []float64          `json:"criticality,omitempty"`
}

// UploadResponse is the outcome of POST /v1/graphs: the fingerprint to
// reference the graph by, plus a structural summary.
type UploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	Events      int    `json:"events"`
	Arcs        int    `json:"arcs"`
	Border      int    `json:"border"`
	// EngineCached reports whether the upload found the engine already
	// resident (a prior client uploaded the same graph).
	EngineCached bool `json:"engine_cached"`
}

// FingerprintResponse is the outcome of POST /v1/fingerprint: the
// canonical content fingerprint of the posted .tsg text, computed by
// parse + hash alone — no engine is compiled and nothing becomes
// resident. The cluster router uses it (or the equivalent in-process
// FingerprintText) to place a graph on its replica set without ever
// holding engine state itself.
type FingerprintResponse struct {
	Fingerprint string `json:"fingerprint"`
	Events      int    `json:"events"`
	Arcs        int    `json:"arcs"`
	Border      int    `json:"border"`
}

// HealthResponse is the outcome of GET /healthz.
type HealthResponse struct {
	OK        bool    `json:"ok"`
	Graphs    int     `json:"graphs"`
	UptimeSec float64 `json:"uptime_sec"`
}

// ErrorResponse carries a request failure; non-2xx responses encode it.
type ErrorResponse struct {
	Error string `json:"error"`
}
