package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsg/internal/cycletime"
	"tsg/internal/dist"
	"tsg/internal/netlist"
	"tsg/internal/obs"
	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/store"
)

// Config tunes a Server.
type Config struct {
	// CacheBytes bounds the engine cache (estimated engine memory).
	// 0 selects DefaultCacheBytes; negative disables caching, making
	// every request pay a full parse + compile (the cold baseline of
	// the load experiments).
	CacheBytes int64
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// Store, when set, makes the server durable: every upload body and
	// every committed edit is appended to the write-ahead log BEFORE it
	// is acknowledged, and Recover replays the log on boot so a killed
	// node comes back with its whole working set at bit-identical λ.
	// With no Store the server is a volatile cache, exactly as before.
	Store *store.Store
	// MaxConcurrent bounds concurrently executing requests per POST
	// endpoint; excess requests wait in a bounded queue or are shed with
	// 503 + Retry-After. 0 means unlimited (no admission control).
	MaxConcurrent int
	// MaxQueue bounds requests waiting per endpoint when MaxConcurrent
	// is saturated (default 4× MaxConcurrent). Waiters past the bound —
	// or whose deadline expires while waiting — are shed.
	MaxQueue int
	// RequestTimeout is the per-request deadline. It bounds admission
	// waiting and propagates as the request context into the engine's
	// cancellable analyses (Monte-Carlo, sensitivity sweeps), so an
	// admitted request never holds workers past its deadline. 0 means
	// no server-imposed deadline.
	RequestTimeout time.Duration
	// DisableObs turns the observability layer off entirely: no span
	// tracing, no metrics registry, /metrics and /debug/trace answer
	// 404. The OBS experiment uses this as the instrumentation-off
	// baseline when measuring overhead.
	DisableObs bool
	// TraceBuffer sizes the span ring (records retained for
	// /debug/trace); 0 selects the default (8192), rounded up to a
	// power of two.
	TraceBuffer int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints on a production daemon are opt-in.
	EnablePprof bool
	// MetricsCompat appends the pre-rename metric series (e.g.
	// tsgserve_queries_total) to /metrics alongside their conforming
	// replacements, for scrapes that have not migrated yet.
	MetricsCompat bool
	// Version is stamped into the tsgserve_build_info gauge (and the
	// daemon's -version output); empty means "dev".
	Version string
}

// DefaultCacheBytes is the default engine-cache budget: enough for a
// few hundred interactive-scale graphs.
const DefaultCacheBytes = 1 << 30

// Server is the analysis service: an http.Handler serving the /v1
// query protocol on top of a shared engine cache.
type Server struct {
	cache    *Cache
	maxBody  int64
	start    time.Time
	mux      *http.ServeMux
	queries  [endpoints]atomic.Int64
	failures atomic.Int64

	// Durability (nil store = volatile server).
	store *store.Store
	// editMu serialises the edit commit path: dedupe check, WAL append
	// and engine apply happen under one hold, so WAL order is apply
	// order and a retried (client, seq) can never apply twice.
	editMu sync.Mutex
	// seqs is the exactly-once table: fingerprint → client → highest
	// applied sequence number. Guarded by editMu; rebuilt by Recover.
	seqs map[string]map[string]uint64

	// Overload protection.
	limits  [endpoints]*limiter
	timeout time.Duration
	sheds   [endpoints][shedReasons]atomic.Int64
	panics  atomic.Int64

	// Warm-restart accounting: engines recompiled and edits re-applied
	// by Recover, counted separately from request-driven compiles.
	warmGraphs atomic.Int64
	warmEdits  atomic.Int64

	// Observability (nil tel = Config.DisableObs; every span call is a
	// cheap nil no-op then).
	tel           *telemetry
	metricsCompat bool
}

// endpoint indices for the per-endpoint query counters.
const (
	epAnalyze = iota
	epSlacks
	epWhatIf
	epMC
	epUpload
	epEdit
	epFingerprint
	endpoints
)

var endpointNames = [endpoints]string{"analyze", "slacks", "whatif", "mc", "upload", "edit", "fingerprint"}

// New returns a Server ready to serve the protocol.
func New(cfg Config) *Server {
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	s := &Server{
		cache:   NewCache(cacheBytes),
		maxBody: maxBody,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		store:   cfg.Store,
		seqs:    map[string]map[string]uint64{},
		timeout: cfg.RequestTimeout,
	}
	if cfg.MaxConcurrent > 0 {
		maxQueue := cfg.MaxQueue
		if maxQueue <= 0 {
			maxQueue = 4 * cfg.MaxConcurrent
		}
		for ep := 0; ep < endpoints; ep++ {
			s.limits[ep] = newLimiter(cfg.MaxConcurrent, maxQueue)
		}
	}
	s.mux.HandleFunc("POST /v1/graphs", s.admit(epUpload, s.handleUpload))
	s.mux.HandleFunc("POST /v1/analyze", s.admit(epAnalyze, s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/slacks", s.admit(epSlacks, s.handleSlacks))
	s.mux.HandleFunc("POST /v1/whatif", s.admit(epWhatIf, s.handleWhatIf))
	s.mux.HandleFunc("POST /v1/mc", s.admit(epMC, s.handleMC))
	s.mux.HandleFunc("POST /v1/edit", s.admit(epEdit, s.handleEdit))
	s.mux.HandleFunc("POST /v1/fingerprint", s.admit(epFingerprint, s.handleFingerprint))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.metricsCompat = cfg.MetricsCompat
	if !cfg.DisableObs {
		s.tel = newTelemetry(s, cfg)
	}
	s.installDebug(cfg.EnablePprof)
	return s
}

// ServeHTTP implements http.Handler: panic recovery outermost (a
// panicking handler costs one 500, never the daemon), then the body
// bound, then the request deadline (which admission waits and engine
// analyses both observe), then the routed handler behind its
// admission gate.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.withRecovery(w, r, s.mux)
}

// Cache exposes the engine cache (the daemon's shutdown log and the
// load experiments read its statistics).
func (s *Server) Cache() *Cache { return s.cache }

// httpError is an error with a client-facing status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeJSON encodes a 200 response. An encode failure cannot rescind
// the implied 200, but it is at least counted — responses must be
// constructed JSON-encodable (finite floats; see sanitizeCI).
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.failures.Add(1)
	}
}

// sanitizeCI maps an undefined confidence half-width (±Inf/NaN — the
// stream estimators return +Inf below their minimum sample counts) to
// the wire sentinel -1, since JSON cannot carry non-finite numbers.
func sanitizeCI(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// writeError encodes a failure response. Requests that ran out of
// deadline mid-analysis (the engine's cancellable loops return the
// context error) answer 503 + Retry-After like a shed request: the
// failure is the server's load, not the request, and the client's
// backoff retry is the right reaction to both. EVERY 503 this path
// writes carries Retry-After — including the pass-through-mode
// refusals of /v1/graphs and /v1/edit — so the backoff signal a
// failing-over router (or end client) keys on is uniform regardless
// of which layer shed the request.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.failures.Add(1)
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		status = http.StatusRequestEntityTooLarge
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusServiceUnavailable
		err = fmt.Errorf("request deadline exceeded during analysis: %w", err)
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// writeErrorStatus encodes a failure with an explicit status, without
// the failure-counter side effect (callers count their own).
func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// decode parses a JSON request body.
func decode(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return err
		}
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// resolve turns a GraphRef into the cached entry serving it, compiling
// on first sight of inline graph text. On success the request's span
// tree is attributed to the graph's fingerprint and the entry's
// request counter ticks.
func (s *Server) resolve(ctx context.Context, ref GraphRef) (*Entry, bool, error) {
	ent, hit, err := s.resolveInner(ctx, ref)
	if err == nil {
		if tel := s.tel; tel != nil {
			id := ent.obsGraph.Load()
			if id == 0 {
				id = tel.tracer.InternGraph(ent.Key)
				ent.obsGraph.Store(id)
			}
			obs.FromContext(ctx).SetGraphID(id)
		}
		ent.noteRequest()
	}
	return ent, hit, err
}

func (s *Server) resolveInner(ctx context.Context, ref GraphRef) (*Entry, bool, error) {
	if ref.Graph != "" {
		// Inline text pays a parse and possibly a compile — span it.
		sp := obs.LeafN(ctx, nameCacheLookup)
		defer sp.End()
		g, m, err := netlist.ReadTSGDist(strings.NewReader(ref.Graph))
		if err != nil {
			return nil, false, badRequest("parsing graph: %v", err)
		}
		key := ContentKey(g, m)
		ent, hit, err := s.cache.GetOrCompile(ctx, key, func() (*sg.Graph, *dist.Model, error) {
			return g, m, nil
		})
		if err != nil {
			// Compile failures of an inline graph (e.g. no border
			// events, so nothing repetitive to time) are defects of the
			// uploaded data, not of the server.
			return nil, false, badRequest("compiling graph: %v", err)
		}
		sp.SetTierN(lookupTier(hit))
		return ent, hit, nil
	}
	if ref.Fingerprint == "" {
		return nil, false, badRequest("request references no graph: set \"graph\" (.tsg text) or \"fingerprint\"")
	}
	// Fingerprint references resolve with one map read under the cache
	// mutex; a resident hit — the hottest operation the server has — is
	// deliberately not spanned. The cache hit/miss counters on /metrics
	// and the request tree's serve→engine spine carry the signal at a
	// fraction of the ring-record cost.
	ent := s.cache.Get(ref.Fingerprint)
	if ent == nil {
		return nil, false, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("no graph with fingerprint %s is resident: upload it (POST /v1/graphs) or inline it", ref.Fingerprint)}
	}
	return ent, true, nil
}

func lookupTier(hit bool) obs.Name {
	if hit {
		return tierHit
	}
	return tierMiss
}

// wireLambda converts an exact cycle time to its wire form.
func wireLambda(r stat.Ratio) Lambda {
	n := r.Normalize()
	return Lambda{Num: n.Num, Den: n.Den, Float: n.Float(), Text: n.String()}
}

func (s *Server) handleUpload(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epUpload].Add(1)
	if s.cache.Disabled() {
		// Honouring the upload would hand back a fingerprint that 404s
		// on its first use (nothing stays resident in pass-through
		// mode); fail the contract loudly instead.
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable,
			msg: "the engine cache is disabled on this server; inline the graph (\"graph\" field) in each request instead of uploading"})
		return
	}
	text, err := readGraphBody(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ent, hit, err := s.resolve(ctx, GraphRef{Graph: text})
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Durability before acknowledgement: the fingerprint this response
	// hands out must survive a crash, so the body is logged (once per
	// fingerprint) before the client learns it. A WAL failure fails the
	// upload — acknowledging an unlogged fingerprint would be a silent
	// durability lie.
	if s.store != nil && !s.store.HasGraph(ent.Key) {
		sp := obs.LeafN(ctx, nameWALAppend)
		sp.AnnotateN(keyBytes, uint64(len(text)))
		err := s.store.AppendGraph(ent.Key, []byte(text))
		sp.End()
		if err != nil {
			s.writeError(w, fmt.Errorf("persisting graph: %w", err))
			return
		}
	}
	s.writeJSON(w, UploadResponse{
		Fingerprint:  ent.Key,
		Events:       ent.Graph.NumEvents(),
		Arcs:         ent.Graph.NumArcs(),
		Border:       len(ent.Graph.BorderEvents()),
		EngineCached: hit,
	})
}

// readGraphBody extracts .tsg text from an upload-style request body:
// either a JSON {"graph": "..."} envelope or the raw .tsg bytes
// (curl --data-binary @graph.tsg), selected by Content-Type.
func readGraphBody(r *http.Request) (string, error) {
	var text string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Graph string `json:"graph"`
		}
		if err := decode(r, &req); err != nil {
			return "", err
		}
		text = req.Graph
	} else {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			return "", err
		}
		text = string(b)
	}
	if strings.TrimSpace(text) == "" {
		return "", badRequest("empty graph upload")
	}
	return text, nil
}

// FingerprintText parses .tsg text (with optional ~dist/@group
// annotations) and returns its canonical content fingerprint — the
// cache/shard key — plus the parsed structural summary, without
// compiling anything. This is the in-process form of POST
// /v1/fingerprint; the cluster router calls it to place graphs on
// replica sets without ever building an engine.
func FingerprintText(text string) (fp string, events, arcs, border int, err error) {
	g, m, err := netlist.ReadTSGDist(strings.NewReader(text))
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("parsing graph: %w", err)
	}
	return ContentKey(g, m), g.NumEvents(), g.NumArcs(), len(g.BorderEvents()), nil
}

// handleFingerprint answers the graph's canonical fingerprint from a
// parse alone: no compile, no cache insertion, no WAL append. It works
// in every server mode (including pass-through, where uploads refuse),
// because it holds no state — it is a pure function of the body.
func (s *Server) handleFingerprint(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epFingerprint].Add(1)
	text, err := readGraphBody(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	fp, events, arcs, border, err := FingerprintText(text)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	s.writeJSON(w, FingerprintResponse{Fingerprint: fp, Events: events, Arcs: arcs, Border: border})
}

func (s *Server) handleAnalyze(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epAnalyze].Add(1)
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ent, hit, err := s.resolve(ctx, req.GraphRef)
	if err != nil {
		s.writeError(w, err)
		return
	}
	lam, critical, err := ent.Engine.SummaryCtx(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := AnalyzeResponse{
		Fingerprint:  ent.Key,
		Lambda:       wireLambda(lam),
		EngineCached: hit,
	}
	for _, c := range critical {
		arcs := make([]int, len(c.Arcs))
		for i, a := range c.Arcs {
			arcs[i] = ent.Rank[a]
		}
		resp.Critical = append(resp.Critical, CriticalCycle{
			Events: ent.Graph.EventNames(c.Events),
			Arcs:   arcs,
			Length: c.Length,
			Period: c.Period,
		})
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleSlacks(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epSlacks].Add(1)
	var req SlacksRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ent, _, err := s.resolve(ctx, req.GraphRef)
	if err != nil {
		s.writeError(w, err)
		return
	}
	lam, err := ent.Engine.CycleTimeCtx(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	slacks, err := ent.Engine.SlacksCtx(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := SlacksResponse{Fingerprint: ent.Key, Lambda: wireLambda(lam)}
	for _, sl := range slacks {
		a := ent.Graph.Arc(sl.Arc)
		resp.Slacks = append(resp.Slacks, ArcSlack{
			Arc:   ent.Rank[sl.Arc],
			From:  ent.Graph.Event(a.From).Name,
			To:    ent.Graph.Event(a.To).Name,
			Delay: a.Delay,
			Slack: sl.Slack,
			Tight: sl.Tight,
		})
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleWhatIf(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epWhatIf].Add(1)
	var req WhatIfRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, badRequest("whatif request batches no queries"))
		return
	}
	ent, _, err := s.resolve(ctx, req.GraphRef)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cands := make([]cycletime.WhatIf, len(req.Queries))
	for i, q := range req.Queries {
		if q.Arc < 0 || q.Arc >= len(ent.Canon) {
			s.writeError(w, badRequest("query %d: arc index %d out of range [0,%d)", i, q.Arc, len(ent.Canon)))
			return
		}
		if q.Delay < 0 || math.IsNaN(q.Delay) {
			s.writeError(w, badRequest("query %d: invalid delay %g", i, q.Delay))
			return
		}
		cands[i] = cycletime.WhatIf{Arc: ent.Canon[q.Arc], Delay: q.Delay}
		ent.touchArc(q.Arc)
	}
	// Queries are fully validated above; a sweep failure past this
	// point is the server's problem, not the client's (500) — except a
	// deadline expiry, which writeError maps to a retryable 503.
	lams, err := ent.Engine.SensitivitySweepCtx(ctx, cands)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := WhatIfResponse{Fingerprint: ent.Key, Lambdas: make([]Lambda, len(lams))}
	for i, lam := range lams {
		resp.Lambdas[i] = wireLambda(lam)
	}
	resp.Stats = wireStats(ent.Engine.Stats())
	s.writeJSON(w, resp)
}

// wireStats converts engine counters to their wire form.
func wireStats(st cycletime.EngineStats) EngineStats {
	return EngineStats{
		Analyses:            st.Analyses,
		IncrementalAnalyses: st.IncrementalAnalyses,
		FastPathHits:        st.FastPathHits,
		TableAnswers:        st.TableAnswers,
		WindowedPass1:       st.WindowedPass1,
		SlabPass1:           st.SlabPass1,
		PatchFloods:         st.PatchFloods,
		LazyPass2Skips:      st.LazyPass2Skips,
		Pass2Runs:           st.Pass2Runs,
	}
}

// handleEdit commits delay edits to the graph's resident engine and
// returns λ at the new baseline — the server half of the edit→analyze
// loop. Edits are durable session state; in pass-through mode (cache
// disabled) there is no session to edit, so the request fails loudly,
// like uploads do.
func (s *Server) handleEdit(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epEdit].Add(1)
	if s.cache.Disabled() {
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable,
			msg: "the engine cache is disabled on this server; edits need a resident engine session"})
		return
	}
	var req EditRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Edits) == 0 && !req.Reset {
		s.writeError(w, badRequest("edit request commits no edits and no reset"))
		return
	}
	ent, _, err := s.resolve(ctx, req.GraphRef)
	if err != nil {
		s.writeError(w, err)
		return
	}
	for i, ed := range req.Edits {
		if ed.Arc < 0 || ed.Arc >= len(ent.Canon) {
			s.writeError(w, badRequest("edit %d: arc index %d out of range [0,%d)", i, ed.Arc, len(ent.Canon)))
			return
		}
		if ed.Delay < 0 || math.IsNaN(ed.Delay) {
			s.writeError(w, badRequest("edit %d: invalid delay %g", i, ed.Delay))
			return
		}
	}
	if req.Client == "" && req.Seq != 0 {
		s.writeError(w, badRequest("edit sequence number %d without a client id", req.Seq))
		return
	}
	if req.Client != "" && req.Seq == 0 {
		s.writeError(w, badRequest("client %q stamped no sequence number (seq must be >= 1)", req.Client))
		return
	}
	for _, ed := range req.Edits {
		ent.touchArc(ed.Arc)
	}
	// Edits are fully validated; failures past this point are 500s.
	deduped, err := s.commitEdit(ctx, ent, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// λ-only by default: CycleTime stops after pass 1, so a localized
	// edit is answered without any simulation; Criticals opts into the
	// winner re-simulation of the lazy pass 2.
	resp := EditResponse{Fingerprint: ent.Key, Deduped: deduped}
	if !deduped {
		resp.Applied = len(req.Edits)
	}
	if req.Criticals {
		lam, critical, err := ent.Engine.SummaryCtx(ctx)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.Lambda = wireLambda(lam)
		for _, c := range critical {
			arcs := make([]int, len(c.Arcs))
			for i, a := range c.Arcs {
				arcs[i] = ent.Rank[a]
			}
			resp.Critical = append(resp.Critical, CriticalCycle{
				Events: ent.Graph.EventNames(c.Events),
				Arcs:   arcs,
				Length: c.Length,
				Period: c.Period,
			})
		}
	} else {
		lam, err := ent.Engine.CycleTimeCtx(ctx)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.Lambda = wireLambda(lam)
	}
	resp.Stats = wireStats(ent.Engine.Stats())
	s.writeJSON(w, resp)
}

// commitEdit is the serialised commit path of a validated edit:
// duplicate detection, write-ahead logging and engine application
// under one editMu hold, so the WAL's record order is the engines'
// apply order (replay is then trivially equivalent) and a retried
// (client, seq) pair applies exactly once.
//
// The dedupe contract: a request stamped with a (client, seq) the
// server has already applied is acknowledged without re-applying —
// deduped=true, and the caller answers λ at the CURRENT baseline.
// Since the client package only retries an edit it never saw
// acknowledged, and stamps the retry with the same seq, the duplicate
// can only be the immediately preceding edit — whose post-state is the
// current baseline — so the retried response equals the lost one.
func (s *Server) commitEdit(ctx context.Context, ent *Entry, req *EditRequest) (deduped bool, err error) {
	s.editMu.Lock()
	defer s.editMu.Unlock()
	if req.Client != "" {
		if req.Seq <= s.seqs[ent.Key][req.Client] {
			return true, nil
		}
	}
	if s.store != nil {
		sp := obs.LeafN(ctx, nameWALAppend)
		sp.AnnotateN(keyEdits, uint64(len(req.Edits)))
		defer sp.End()
		// An edit is session state against a fingerprint: for replay to
		// re-apply it, the body must be in the log too. Inline-text
		// sessions (never uploaded) get a canonical re-serialisation of
		// the entry's graph + model logged on their first durable edit.
		if !s.store.HasGraph(ent.Key) {
			var b strings.Builder
			if err := netlist.WriteTSGDist(&b, ent.Graph, ent.Model); err != nil {
				return false, fmt.Errorf("serialising graph for the log: %w", err)
			}
			if err := s.store.AppendGraph(ent.Key, []byte(b.String())); err != nil {
				return false, fmt.Errorf("persisting graph: %w", err)
			}
		}
		rec := store.Edit{
			Fingerprint: ent.Key,
			Reset:       req.Reset,
			Client:      req.Client,
			Seq:         req.Seq,
		}
		for _, ed := range req.Edits {
			rec.Edits = append(rec.Edits, store.EditDelta{Arc: ed.Arc, Delay: ed.Delay})
		}
		// Write-ahead: the edit is logged before it is applied, so an
		// acknowledged edit is never lost — and an edit lost to a crash
		// here was never acknowledged (the request fails with 500 and the
		// client's retry re-commits it under the same seq).
		if err := s.store.AppendEdit(rec); err != nil {
			return false, fmt.Errorf("persisting edit: %w", err)
		}
	}
	if req.Reset {
		ent.Engine.ResetDelays()
	}
	for _, ed := range req.Edits {
		if err := ent.Engine.SetDelay(ent.Canon[ed.Arc], ed.Delay); err != nil {
			return false, err
		}
	}
	if req.Client != "" {
		m := s.seqs[ent.Key]
		if m == nil {
			m = map[string]uint64{}
			s.seqs[ent.Key] = m
		}
		m[req.Client] = req.Seq
	}
	return false, nil
}

func (s *Server) handleMC(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.queries[epMC].Add(1)
	var req MCRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	// Option validation up front, so an engine failure below is a
	// genuine 500 rather than a misclassified client error.
	if req.Samples < 0 || req.MinSamples < 0 || req.Workers < 0 {
		s.writeError(w, badRequest("negative sample/worker counts"))
		return
	}
	if req.Tol < 0 || math.IsNaN(req.Tol) || req.Jitter < 0 || math.IsNaN(req.Jitter) {
		s.writeError(w, badRequest("invalid tol %g or jitter %g", req.Tol, req.Jitter))
		return
	}
	if req.Confidence != 0 && (req.Confidence <= 0 || req.Confidence >= 1) {
		s.writeError(w, badRequest("confidence %g outside (0, 1)", req.Confidence))
		return
	}
	for _, q := range req.Quantiles {
		if q <= 0 || q >= 1 {
			s.writeError(w, badRequest("quantile %g outside (0, 1)", q))
			return
		}
	}
	ent, _, err := s.resolve(ctx, req.GraphRef)
	if err != nil {
		s.writeError(w, err)
		return
	}
	model := ent.Model
	if model.Deterministic() && req.Jitter > 0 {
		nominal := make([]float64, ent.Graph.NumArcs())
		for i := range nominal {
			nominal[i] = ent.Graph.Arc(i).Delay
		}
		model, err = dist.JitterUniform(nominal, req.Jitter)
		if err != nil {
			s.writeError(w, badRequest("jitter model: %v", err))
			return
		}
	}
	res, err := ent.Engine.AnalyzeMCCtx(ctx, model, cycletime.MCOptions{
		Samples:     req.Samples,
		MinSamples:  req.MinSamples,
		Seed:        req.Seed,
		Quantiles:   req.Quantiles,
		Tol:         req.Tol,
		Confidence:  req.Confidence,
		Criticality: req.Criticality,
		Workers:     req.Workers,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	var criticality []float64
	if res.Criticality != nil {
		criticality = make([]float64, len(res.Criticality))
		for k, i := range ent.Canon {
			criticality[k] = res.Criticality[i]
		}
	}
	resp := MCResponse{
		Fingerprint: ent.Key,
		Samples:     res.Samples,
		Converged:   res.Converged,
		Mean:        res.Mean,
		Variance:    res.Variance,
		Std:         res.Std,
		Min:         res.Min,
		Max:         res.Max,
		MeanCIHalf:  sanitizeCI(res.MeanCIHalf),
		Criticality: criticality,
	}
	for _, q := range res.Quantiles {
		resp.Quantiles = append(resp.Quantiles, QuantileEstimate{P: q.P, Value: q.Value, CIHalf: sanitizeCI(q.CIHalf)})
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	s.writeJSON(w, HealthResponse{
		OK:        true,
		Graphs:    st.Entries,
		UptimeSec: time.Since(s.start).Seconds(),
	})
}
