package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/obs"
)

// uploadGraph posts a graph as raw TSG text and returns the upload
// reply.
func uploadGraph(t testing.TB, srv *httptest.Server, text string) UploadResponse {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	var up UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding upload reply: %v", err)
	}
	return up
}

// getJSON fetches a GET endpoint and decodes its JSON reply.
func getJSON(t testing.TB, srv *httptest.Server, path string, out interface{}) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
}

// traceReply mirrors the /debug/trace JSON shape.
type traceReply struct {
	Recorded uint64           `json:"recorded_total"`
	Spans    []obs.SpanRecord `json:"spans"`
}

// TestEveryV1EndpointTracesToKernelDepth drives each /v1 endpoint once
// and asserts, through /debug/trace, that its request tree reaches the
// engine phase level — the full-stack contract of the tracer.
func TestEveryV1EndpointTracesToKernelDepth(t *testing.T) {
	g := gen.Oscillator()
	text := tsgText(t, g)
	s := New(Config{MaxConcurrent: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()

	up := uploadGraph(t, srv, text)
	ref := GraphRef{Fingerprint: up.Fingerprint}
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: ref}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/slacks", SlacksRequest{GraphRef: ref}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/whatif", WhatIfRequest{GraphRef: ref, Queries: []WhatIfQuery{{Arc: 0, Delay: 5}}}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/edit", EditRequest{GraphRef: ref, Edits: []DelayEdit{{Arc: 0, Delay: 3}}}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/mc", MCRequest{GraphRef: ref, Samples: 32, Jitter: 0.1}, nil, http.StatusOK)

	var tr traceReply
	getJSON(t, srv, "/debug/trace", &tr)
	if tr.Recorded == 0 || len(tr.Spans) == 0 {
		t.Fatalf("no spans recorded: %+v", tr)
	}
	trees := obs.BuildTrees(tr.Spans)

	// Each endpoint's tree must contain an engine-level descendant:
	// the span tree goes HTTP edge → cache/admission → engine phases.
	wantKernel := map[string]bool{
		"serve.upload":  false, // compile happens under upload's resolve
		"serve.analyze": false,
		"serve.slacks":  false,
		"serve.whatif":  false,
		"serve.edit":    false,
		"serve.mc":      false,
	}
	var walk func(n *obs.TreeNode) bool
	walk = func(n *obs.TreeNode) bool {
		if strings.HasPrefix(n.Name, "engine.") {
			return true
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	for _, root := range trees {
		if _, tracked := wantKernel[root.Name]; !tracked {
			continue
		}
		if walk(root) {
			wantKernel[root.Name] = true
		}
	}
	for ep, ok := range wantKernel {
		if !ok {
			t.Errorf("%s request tree never reached an engine.* span", ep)
		}
	}

	// The graph filter keeps whole traces for the fingerprint and
	// nothing for unknown fingerprints.
	var filtered traceReply
	getJSON(t, srv, "/debug/trace?graph="+up.Fingerprint, &filtered)
	if len(filtered.Spans) == 0 {
		t.Fatal("graph-filtered trace is empty")
	}
	var none traceReply
	getJSON(t, srv, "/debug/trace?graph=deadbeef", &none)
	if len(none.Spans) != 0 {
		t.Fatalf("unknown-graph filter returned %d spans", len(none.Spans))
	}

	// format=tree renders the indented text form.
	resp, err := srv.Client().Get(srv.URL + "/debug/trace?format=tree")
	if err != nil {
		t.Fatalf("GET trace tree: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading tree: %v", err)
	}
	if !strings.Contains(string(body), "serve.analyze") {
		t.Fatalf("tree rendering missing serve.analyze:\n%s", body)
	}
}

// TestHotArcsAndCacheDebug runs an edit/what-if workload and checks the
// hot-arc accounting surfaces through /debug/hotarcs and /debug/cache.
func TestHotArcsAndCacheDebug(t *testing.T) {
	g := gen.Oscillator()
	text := tsgText(t, g)
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	up := uploadGraph(t, srv, text)
	ref := GraphRef{Fingerprint: up.Fingerprint}
	// Arc 1 is touched 3× (2 what-ifs + 1 edit), arc 0 once.
	postJSON(t, srv, "/v1/whatif", WhatIfRequest{GraphRef: ref, Queries: []WhatIfQuery{{Arc: 1, Delay: 4}, {Arc: 1, Delay: 6}, {Arc: 0, Delay: 2}}}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/edit", EditRequest{GraphRef: ref, Edits: []DelayEdit{{Arc: 1, Delay: 9}}}, nil, http.StatusOK)

	var hot struct {
		Graphs []hotArcReport `json:"graphs"`
	}
	getJSON(t, srv, "/debug/hotarcs", &hot)
	if len(hot.Graphs) != 1 {
		t.Fatalf("want 1 graph in hotarcs, got %d", len(hot.Graphs))
	}
	rep := hot.Graphs[0]
	if rep.Fingerprint != up.Fingerprint || rep.Touches != 4 {
		t.Fatalf("bad hotarcs report: %+v", rep)
	}
	if len(rep.Arcs) == 0 || rep.Arcs[0].Arc != 1 || rep.Arcs[0].Touches != 3 {
		t.Fatalf("arc 1 should lead with 3 touches: %+v", rep.Arcs)
	}

	var cache struct {
		Stats   CacheStats        `json:"stats"`
		Entries []debugCacheEntry `json:"entries"`
	}
	getJSON(t, srv, "/debug/cache", &cache)
	if len(cache.Entries) != 1 || cache.Entries[0].Fingerprint != up.Fingerprint {
		t.Fatalf("bad /debug/cache entries: %+v", cache.Entries)
	}
	if cache.Entries[0].Requests < 3 || cache.Entries[0].CostBytes <= 0 {
		t.Fatalf("entry accounting off: %+v", cache.Entries[0])
	}
}

// TestMetricsExpositionLintsClean scrapes /metrics after mixed traffic
// and runs it through the package's own exposition parser: every family
// must carry HELP/TYPE, counters must end in _total, histograms must be
// cumulative with +Inf — machine-readable, not greppable-by-luck.
func TestMetricsExpositionLintsClean(t *testing.T) {
	g := gen.Oscillator()
	text := tsgText(t, g)
	s := New(Config{MaxConcurrent: 2, Version: "test-1.2.3"})
	srv := httptest.NewServer(s)
	defer srv.Close()

	up := uploadGraph(t, srv, text)
	ref := GraphRef{Fingerprint: up.Fingerprint}
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: ref}, nil, http.StatusOK)
	postJSON(t, srv, "/v1/whatif", WhatIfRequest{GraphRef: ref, Queries: []WhatIfQuery{{Arc: 0, Delay: 5}}}, nil, http.StatusOK)

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	fams, problems, err := obs.Parse(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("exposition lint problems: %v", problems)
	}
	for _, want := range []struct {
		name   string
		labels map[string]string
		min    float64
	}{
		{"tsgserve_http_requests_total", map[string]string{"endpoint": "analyze"}, 1},
		{"tsgserve_http_request_duration_seconds_count", map[string]string{"endpoint": "analyze"}, 1},
		{"tsgserve_engine_phase_seconds_count", map[string]string{"phase": "pass1"}, 1},
		{"tsgserve_build_info", map[string]string{"version": "test-1.2.3"}, 1},
		{"tsgserve_graph_requests", map[string]string{"graph": up.Fingerprint}, 1},
	} {
		v, ok := obs.FindSample(fams, want.name, want.labels)
		if !ok || v < want.min {
			t.Errorf("series %s%v: got %v (found=%v), want >= %v", want.name, want.labels, v, ok, want.min)
		}
	}
}

// TestMetricsCompatFlag checks the deprecated series only appear behind
// Config.MetricsCompat, and that the compat output still lints clean.
func TestMetricsCompatFlag(t *testing.T) {
	for _, compat := range []bool{false, true} {
		s := New(Config{MetricsCompat: compat})
		srv := httptest.NewServer(s)
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		fams, problems, err := obs.Parse(resp.Body)
		resp.Body.Close()
		srv.Close()
		if err != nil {
			t.Fatalf("parsing exposition: %v", err)
		}
		if len(problems) != 0 {
			t.Fatalf("compat=%v lint problems: %v", compat, problems)
		}
		_, hasOld := obs.FindSample(fams, "tsgserve_queries_total", map[string]string{"endpoint": "analyze"})
		if hasOld != compat {
			t.Fatalf("compat=%v but old series present=%v", compat, hasOld)
		}
		if _, hasNew := obs.FindSample(fams, "tsgserve_http_requests_total", map[string]string{"endpoint": "analyze"}); !hasNew {
			t.Fatalf("compat=%v: new series missing", compat)
		}
	}
}

// TestDisableObs checks the off switch: no tracer cost, /metrics and
// /debug/trace answer 404, and requests still serve correctly — the
// compiled-out baseline of the OBS experiment.
func TestDisableObs(t *testing.T) {
	g := gen.Oscillator()
	text := tsgText(t, g)
	s := New(Config{DisableObs: true})
	srv := httptest.NewServer(s)
	defer srv.Close()

	up := uploadGraph(t, srv, text)
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, nil, http.StatusOK)

	for _, path := range []string{"/metrics", "/debug/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s with DisableObs: status %d, want 404", path, resp.StatusCode)
		}
	}
}
