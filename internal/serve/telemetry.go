package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"time"

	"tsg/internal/obs"
)

// telemetry is the server's observability surface: the span ring every
// request traces into, the metrics registry /metrics renders from, and
// the live-introspection handlers under /debug. The pre-existing atomic
// counters on Server/Cache stay the single source of truth — the
// registry reads them through obs.Func collectors at scrape time — so
// instrumentation adds histograms and spans without duplicating any
// bookkeeping.
type telemetry struct {
	tracer *obs.Tracer
	reg    *obs.Registry

	reqDur   *obs.HistogramVec // request latency by endpoint
	admWait  *obs.HistogramVec // admission queue wait by endpoint
	phaseDur *obs.HistogramVec // engine phase durations, fed by span ends
	walDur   *obs.Histogram    // WAL append+fsync latency
	walBytes *obs.Counter      // WAL bytes appended

	// Hot-path lookups resolved once at construction so admit() observes
	// per-request metrics without a label→series map hit, and roots its
	// span with a pre-interned name.
	rootNames [endpoints]obs.Name
	reqDurEp  [endpoints]*obs.Histogram
	admWaitEp [endpoints]*obs.Histogram
}

// enginePhases is the closed set of engine span names feeding the
// tsgserve_engine_phase_seconds histogram (via the tracer's OnEnd
// hook). A new engine.* span name must be added here to be observed —
// the hook matches pre-interned ids, not string prefixes, to stay off
// the allocation path.
var enginePhases = []string{
	"compile", "answer", "sweep", "pass1", "pass2", "patch", "slackcert", "rows", "mc",
}

// defaultTraceBuffer is the span ring size when Config.TraceBuffer is
// unset: enough for a few hundred request trees of interactive depth.
const defaultTraceBuffer = 8192

// newTelemetry wires the tracer, the histograms and every Func
// collector bridging the server's existing counters into one registry.
func newTelemetry(s *Server, cfg Config) *telemetry {
	size := cfg.TraceBuffer
	if size <= 0 {
		size = defaultTraceBuffer
	}
	t := &telemetry{
		tracer:   obs.NewTracer(size),
		reg:      obs.NewRegistry(),
		reqDur:   obs.NewHistogramVec("tsgserve_http_request_duration_seconds", "Request latency from admission decision to response, by endpoint.", obs.LatencyBuckets, "endpoint"),
		admWait:  obs.NewHistogramVec("tsgserve_admission_wait_seconds", "Time requests spent queued at the admission gate, by endpoint (admitted requests only).", obs.LatencyBuckets, "endpoint"),
		phaseDur: obs.NewHistogramVec("tsgserve_engine_phase_seconds", "Engine phase durations observed through the span tracer, by phase (pass1, pass2, patch, slackcert, rows, compile, mc, answer, sweep).", obs.PhaseBuckets, "phase"),
		walDur:   obs.NewHistogram("tsgserve_wal_append_seconds", "Write-ahead-log append latency including the fsync, per durable record.", obs.LatencyBuckets),
		walBytes: obs.NewCounter("tsgserve_wal_appended_bytes_total", "Bytes appended to the write-ahead log (framed records)."),
	}
	for ep, name := range endpointNames {
		t.rootNames[ep] = obs.N("serve." + name)
		t.reqDurEp[ep] = t.reqDur.With(name)
		t.admWaitEp[ep] = t.admWait.With(name)
	}
	// Span ends feed the duration histograms: engine phase spans route to
	// the phase histogram and serve.<endpoint> roots to the per-endpoint
	// request histogram, so every duration metric rides the clock reads
	// the tracer already pays — admit() never calls time.Now itself. The
	// id→histogram map is built once here and only read afterwards,
	// keeping the per-span-End cost to one map hit.
	durHist := make(map[uint32]*obs.Histogram, len(enginePhases)+endpoints)
	for _, ph := range enginePhases {
		durHist[uint32(obs.N("engine."+ph))] = t.phaseDur.With(ph)
	}
	for ep := range endpointNames {
		durHist[uint32(t.rootNames[ep])] = t.reqDurEp[ep]
	}
	t.tracer.OnEnd(func(name uint32, seconds float64) {
		if h := durHist[name]; h != nil {
			h.Observe(seconds)
		}
	})

	version := cfg.Version
	if version == "" {
		version = "dev"
	}
	gauge := func(name, help string, labels []string, fn func(emit func([]string, float64))) obs.Func {
		return obs.Func{D: obs.Desc{Name: name, Help: help, Type: "gauge", Labels: labels}, Fn: fn}
	}
	counter := func(name, help string, labels []string, fn func(emit func([]string, float64))) obs.Func {
		return obs.Func{D: obs.Desc{Name: name, Help: help, Type: "counter", Labels: labels}, Fn: fn}
	}
	t.reg.MustRegister(
		counter("tsgserve_http_requests_total", "Requests received, by endpoint.", []string{"endpoint"}, func(emit func([]string, float64)) {
			for i, name := range endpointNames {
				emit([]string{name}, float64(s.queries[i].Load()))
			}
		}),
		counter("tsgserve_http_request_failures_total", "Requests answered with a non-2xx status.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.failures.Load()))
		}),
		t.reqDur,
		gauge("tsgserve_http_in_flight_requests", "Requests currently executing (admitted, handler not yet returned), by endpoint.", []string{"endpoint"}, func(emit func([]string, float64)) {
			// Derived, not maintained: started (queries, bumped at handler
			// entry) minus finished (request-duration observations, made
			// when the root span ends) — no per-request gauge updates on
			// the hot path. Clamped against the benign race of a scrape
			// landing between the two counter reads.
			for i, name := range endpointNames {
				v := float64(s.queries[i].Load()) - float64(t.reqDurEp[i].Count())
				if v < 0 {
					v = 0
				}
				emit([]string{name}, v)
			}
		}),
		counter("tsgserve_admission_sheds_total", "Requests shed by admission control with 503 + Retry-After, by endpoint and reason.", []string{"endpoint", "reason"}, func(emit func([]string, float64)) {
			for ep, name := range endpointNames {
				for rs, reason := range shedReasonNames {
					emit([]string{name, reason}, float64(s.sheds[ep][rs].Load()))
				}
			}
		}),
		gauge("tsgserve_admission_queue_depth", "Requests currently waiting at the admission gate, by endpoint.", []string{"endpoint"}, func(emit func([]string, float64)) {
			for ep, name := range endpointNames {
				if lim := s.limits[ep]; lim != nil {
					emit([]string{name}, float64(lim.waiters.Load()))
				}
			}
		}),
		t.admWait,
		counter("tsgserve_engine_cache_hits_total", "Requests served by a resident engine.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Hits))
		}),
		counter("tsgserve_engine_cache_misses_total", "Requests that had to compile (or join an in-flight compile).", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Misses))
		}),
		counter("tsgserve_engine_compiles_total", "Engines compiled (singleflight dedups concurrent misses).", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Compiles))
		}),
		counter("tsgserve_engine_flight_shared_total", "Misses that joined another request's in-flight compile.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().FlightShared))
		}),
		counter("tsgserve_engine_cache_evictions_total", "Entries dropped to respect the cache byte budget.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Evictions))
		}),
		gauge("tsgserve_engine_cache_entries", "Graphs currently resident in the engine cache.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Entries))
		}),
		gauge("tsgserve_engine_cache_bytes", "Estimated bytes of resident engines.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.Stats().Bytes))
		}),
		gauge("tsgserve_engine_analyses", "Analyses run by resident engines, split by mode: full re-simulation vs incremental dirty-cone patching after a committed edit. Gauge: evicted engines leave the aggregate.", []string{"mode"}, func(emit func([]string, float64)) {
			es := s.cache.AggregateEngineStats()
			emit([]string{"full"}, float64(es.Analyses))
			emit([]string{"incremental"}, float64(es.IncrementalAnalyses))
		}),
		gauge("tsgserve_engine_fast_path_answers", "What-if queries answered without re-analysis, by kind. Gauge: evicted engines leave the aggregate.", []string{"kind"}, func(emit func([]string, float64)) {
			es := s.cache.AggregateEngineStats()
			emit([]string{"certificate"}, float64(es.FastPathHits))
			emit([]string{"whatif_row"}, float64(es.TableAnswers))
		}),
		gauge("tsgserve_engine_pass1_kernel", "Pass-1 runs by resident engines, split by kernel: memory-bounded window vs materialised slab. Gauge: evicted engines leave the aggregate.", []string{"kernel"}, func(emit func([]string, float64)) {
			es := s.cache.AggregateEngineStats()
			emit([]string{"window"}, float64(es.WindowedPass1))
			emit([]string{"slab"}, float64(es.SlabPass1))
		}),
		gauge("tsgserve_engine_patch_floods", "Incremental patches whose dirty cone hit the flood bail-out, across resident engines. Gauge: evicted engines leave the aggregate.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.cache.AggregateEngineStats().PatchFloods))
		}),
		gauge("tsgserve_engine_lazy_pass2", "Pass-2 outcomes across resident engines: runs that extracted critical cycles vs certificates dropped by an edit before pass 2 ever ran. Gauge: evicted engines leave the aggregate.", []string{"outcome"}, func(emit func([]string, float64)) {
			es := s.cache.AggregateEngineStats()
			emit([]string{"ran"}, float64(es.Pass2Runs))
			emit([]string{"skipped"}, float64(es.LazyPass2Skips))
		}),
		t.phaseDur,
		gauge("tsgserve_graph_requests", "Requests served per resident graph, by fingerprint. Gauge: evicted graphs leave.", []string{"graph"}, func(emit func([]string, float64)) {
			for _, ent := range s.cache.Resident() {
				emit([]string{ent.Key}, float64(ent.Requests()))
			}
		}),
		gauge("tsgserve_hot_arc_touches", "What-if and edit arc touches per resident graph (summed over arcs; per-arc detail at /debug/hotarcs). Gauge: evicted graphs leave.", []string{"graph"}, func(emit func([]string, float64)) {
			for _, ent := range s.cache.Resident() {
				_, total := ent.hotSummary()
				emit([]string{ent.Key}, float64(total))
			}
		}),
		counter("tsgserve_panics_total", "Handler panics recovered to a 500 instead of killing the daemon.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.panics.Load()))
		}),
		counter("tsgserve_warm_restart_graphs_total", "Engines recompiled from the write-ahead log on boot (counted separately from request-driven compiles).", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.warmGraphs.Load()))
		}),
		counter("tsgserve_warm_restart_edits_total", "Edit records re-applied from the write-ahead log on boot.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.warmEdits.Load()))
		}),
		gauge("tsgserve_build_info", "Build metadata; the value is always 1.", []string{"version", "goversion"}, func(emit func([]string, float64)) {
			emit([]string{version, runtime.Version()}, 1)
		}),
		gauge("tsgserve_uptime_seconds", "Seconds since the server started.", nil, func(emit func([]string, float64)) {
			emit(nil, time.Since(s.start).Seconds())
		}),
	)
	if s.store != nil {
		t.reg.MustRegister(
			gauge("tsgserve_wal_bytes", "Current write-ahead log size on disk.", nil, func(emit func([]string, float64)) {
				emit(nil, float64(s.store.Size()))
			}),
			counter("tsgserve_wal_compaction_runs_total", "Write-ahead log compactions.", nil, func(emit func([]string, float64)) {
				emit(nil, float64(s.store.Compactions()))
			}),
			t.walDur, t.walBytes,
		)
		s.store.SetSyncObserver(func(bytes int, seconds float64) {
			t.walDur.Observe(seconds)
			t.walBytes.Add(uint64(bytes))
		})
	}
	return t
}

// installDebug mounts the live-introspection endpoints. pprof is opt-in
// (Config.EnablePprof): heap and CPU profiles of a production daemon
// are a deliberate decision, not a default.
func (s *Server) installDebug(enablePprof bool) {
	s.mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/cache", s.handleDebugCache)
	s.mux.HandleFunc("GET /debug/hotarcs", s.handleDebugHotArcs)
	if enablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// handleDebugTrace serves the span ring: the most recent request trees,
// newest data the ring still holds, as JSON span records (parents link
// trees together; obs.BuildTrees reassembles them client-side).
// ?graph=<fingerprint> keeps only traces that touched that graph;
// ?format=tree renders an indented text tree instead of JSON.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		s.writeErrorStatus(w, http.StatusNotFound, "tracing disabled on this server (Config.DisableObs)")
		return
	}
	var spans []obs.SpanRecord
	if fp := r.URL.Query().Get("graph"); fp != "" {
		spans = s.tel.tracer.SnapshotGraph(fp)
	} else {
		spans = s.tel.tracer.Snapshot()
	}
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		obs.WriteTree(w, spans)
		return
	}
	s.writeJSON(w, struct {
		Recorded uint64           `json:"recorded_total"`
		Spans    []obs.SpanRecord `json:"spans"`
	}{Recorded: s.tel.tracer.Recorded(), Spans: spans})
}

// debugCacheEntry is one resident graph in the /debug/cache reply.
type debugCacheEntry struct {
	Fingerprint string `json:"fingerprint"`
	Events      int    `json:"events"`
	Arcs        int    `json:"arcs"`
	CostBytes   int64  `json:"cost_bytes"`
	Requests    int64  `json:"requests"`
}

// handleDebugCache serves the engine cache's live state: the counter
// snapshot plus every resident entry in LRU order (most recent first).
func (s *Server) handleDebugCache(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	entries := []debugCacheEntry{}
	for _, ent := range s.cache.Resident() {
		entries = append(entries, debugCacheEntry{
			Fingerprint: ent.Key,
			Events:      ent.Graph.NumEvents(),
			Arcs:        ent.Graph.NumArcs(),
			CostBytes:   ent.CostBytes(),
			Requests:    ent.Requests(),
		})
	}
	s.writeJSON(w, struct {
		Stats   CacheStats        `json:"stats"`
		Entries []debugCacheEntry `json:"entries"`
	}{Stats: st, Entries: entries})
}

// hotArcReport is one graph's touch counts in the /debug/hotarcs reply.
type hotArcReport struct {
	Fingerprint string     `json:"fingerprint"`
	Requests    int64      `json:"requests"`
	Touches     int64      `json:"touches_total"`
	Arcs        []arcTouch `json:"arcs"`
}

// arcTouch is one canonical arc's touch count.
type arcTouch struct {
	Arc     int   `json:"arc"` // canonical rank, the wire index space
	Touches int64 `json:"touches"`
}

// handleDebugHotArcs reports which arcs the what-if and edit traffic
// actually exercises, per resident graph — the serving-layer view of
// where the interactive optimisation loop is spending its attention.
// ?top=N bounds the per-graph arc list (default 20, 0 = all).
func (s *Server) handleDebugHotArcs(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		if err := json.Unmarshal([]byte(v), &top); err != nil || top < 0 {
			s.writeErrorStatus(w, http.StatusBadRequest, "top must be a non-negative integer")
			return
		}
	}
	reports := []hotArcReport{}
	for _, ent := range s.cache.Resident() {
		touches, total := ent.hotSummary()
		rep := hotArcReport{
			Fingerprint: ent.Key,
			Requests:    ent.Requests(),
			Touches:     total,
			Arcs:        []arcTouch{},
		}
		for arc, n := range touches {
			rep.Arcs = append(rep.Arcs, arcTouch{Arc: arc, Touches: n})
		}
		sort.Slice(rep.Arcs, func(i, j int) bool {
			if rep.Arcs[i].Touches != rep.Arcs[j].Touches {
				return rep.Arcs[i].Touches > rep.Arcs[j].Touches
			}
			return rep.Arcs[i].Arc < rep.Arcs[j].Arc
		})
		if top > 0 && len(rep.Arcs) > top {
			rep.Arcs = rep.Arcs[:top]
		}
		reports = append(reports, rep)
	}
	s.writeJSON(w, struct {
		Graphs []hotArcReport `json:"graphs"`
	}{Graphs: reports})
}

// handleMetrics renders every registered family in Prometheus text
// exposition format — HELP/TYPE on all of them, counters suffixed
// _total, histograms with cumulative le buckets (the promlint command
// and the CI smoke step parse this output back). With MetricsCompat
// the pre-rename series are appended so existing scrapes keep working
// one release longer.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.tel == nil {
		s.writeErrorStatus(w, http.StatusNotFound, "metrics disabled on this server (Config.DisableObs)")
		return
	}
	var b strings.Builder
	if err := s.tel.reg.WritePrometheus(&b); err != nil {
		s.writeError(w, err)
		return
	}
	if s.metricsCompat {
		s.writeCompatMetrics(&b)
	}
	_, _ = w.Write([]byte(b.String()))
}

// writeCompatMetrics appends the pre-PR-8 series names that were
// renamed for exposition-format conformance: queries_total →
// http_requests_total, request_failures_total →
// http_request_failures_total, shed_total → admission_sheds_total.
// Behind Config.MetricsCompat / tsgserved -metrics-compat only; dashboards
// should migrate to the new names.
func (s *Server) writeCompatMetrics(b *strings.Builder) {
	b.WriteString("# HELP tsgserve_queries_total Deprecated alias of tsgserve_http_requests_total.\n")
	b.WriteString("# TYPE tsgserve_queries_total counter\n")
	for i, name := range endpointNames {
		writeSample(b, "tsgserve_queries_total", []string{"endpoint"}, []string{name}, float64(s.queries[i].Load()))
	}
	b.WriteString("# HELP tsgserve_request_failures_total Deprecated alias of tsgserve_http_request_failures_total.\n")
	b.WriteString("# TYPE tsgserve_request_failures_total counter\n")
	writeSample(b, "tsgserve_request_failures_total", nil, nil, float64(s.failures.Load()))
	b.WriteString("# HELP tsgserve_shed_total Deprecated alias of tsgserve_admission_sheds_total.\n")
	b.WriteString("# TYPE tsgserve_shed_total counter\n")
	for ep, name := range endpointNames {
		for rs, reason := range shedReasonNames {
			writeSample(b, "tsgserve_shed_total", []string{"endpoint", "reason"}, []string{name, reason}, float64(s.sheds[ep][rs].Load()))
		}
	}
}

// writeSample renders one compat exposition line; label values here
// are fixed endpoint/reason identifiers, so %q quoting suffices.
func writeSample(b *strings.Builder, name string, labels, values []string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", l, values[i])
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(b, " %d\n", int64(v))
}
