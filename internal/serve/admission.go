package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"tsg/internal/obs"
)

// Admission control: the overload half of the serving layer's
// robustness story. Analysis requests are CPU-bound and long (a
// Monte-Carlo run can hold a core pool for seconds), so unbounded
// concurrency under overload means unbounded memory, collapsing
// throughput, and every request missing its deadline at once. Each
// endpoint instead gets a concurrency limit with a bounded,
// deadline-aware wait queue:
//
//   - a request that finds a free slot runs immediately;
//   - a request that finds the endpoint saturated waits — but only
//     while its own deadline lasts, and only if fewer than the queue
//     bound are already waiting;
//   - everything else is shed NOW with 503 + Retry-After, which costs
//     microseconds and tells a well-behaved client (the client
//     package's backoff retries honour Retry-After) exactly what to do.
//
// Shedding early is the point: under 2× sustained overload the
// admitted requests keep bounded latency (the queue bounds how stale a
// request can be when it starts) and the excess gets a clean, cheap,
// retryable answer instead of a timeout after holding memory for the
// full deadline. The CHAOS experiment drives this at 2× capacity and
// gates on exactly that behaviour.

// shed reasons, used as the metric label.
const (
	shedQueueFull = iota
	shedDeadline
	shedReasons
)

var shedReasonNames = [shedReasons]string{"queue_full", "deadline"}

// limiter is one endpoint's admission gate. A nil *limiter admits
// everything (the default when no concurrency limit is configured).
type limiter struct {
	sem      chan struct{} // buffered to the concurrency limit
	maxQueue int64
	waiters  atomic.Int64
}

// newLimiter builds a gate admitting maxConcurrent runners with at
// most maxQueue waiters behind them.
func newLimiter(maxConcurrent, maxQueue int) *limiter {
	return &limiter{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims an execution slot, waiting (deadline-aware, queue-
// bounded) when the endpoint is saturated. It returns the shed reason
// on failure; on success the caller must release().
func (l *limiter) acquire(ctx context.Context) (reason int, ok bool) {
	select {
	case l.sem <- struct{}{}:
		return 0, true
	default:
	}
	if l.waiters.Add(1) > l.maxQueue {
		l.waiters.Add(-1)
		return shedQueueFull, false
	}
	defer l.waiters.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return 0, true
	case <-ctx.Done():
		return shedDeadline, false
	}
}

func (l *limiter) release() { <-l.sem }

// admit wraps an endpoint handler with its admission gate. Shed
// requests get 503 + Retry-After and are counted per endpoint and
// reason; they never reach the handler, so shedding stays cheap no
// matter how expensive the endpoint is.
//
// Handlers take the context as an argument instead of reading
// r.Context(): propagating the span-armed context through the request
// would clone the http.Request per hit (r.WithContext), and that
// allocation is the difference between tracing being free and tracing
// costing measurable warm throughput.
func (s *Server) admit(ep int, h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Root span of the request tree: everything the request does —
		// admission wait, cache lookup, WAL appends, engine phases —
		// nests under serve.<endpoint>. With observability disabled
		// (tel == nil) no tracer rides the context, so every span call
		// below (and in the engine underneath) is a nil no-op.
		tel := s.tel
		ctx := r.Context()
		var root *obs.Span
		if tel != nil {
			// Ending the root span also observes the per-endpoint request
			// duration histogram, via the tracer's OnEnd routing — no
			// separate clock reads on the unlimited fast path.
			ctx, root = tel.tracer.StartRoot(ctx, tel.rootNames[ep])
			defer root.End()
		}
		if lim := s.limits[ep]; lim != nil {
			start := time.Now()
			wait := obs.LeafN(ctx, nameAdmissionWait)
			reason, ok := lim.acquire(ctx)
			wait.End()
			if tel != nil {
				tel.admWaitEp[ep].Observe(time.Since(start).Seconds())
			}
			if !ok {
				root.SetTierN(tierShed)
				s.sheds[ep][reason].Add(1)
				s.failures.Add(1)
				w.Header().Set("Retry-After", retryAfterSeconds)
				s.writeErrorStatus(w, http.StatusServiceUnavailable,
					"server overloaded: "+endpointNames[ep]+" concurrency limit and queue are full; retry after backoff")
				return
			}
			defer lim.release()
		}
		h(ctx, w, r)
	}
}

// retryAfterSeconds is the Retry-After hint on every 503 this server
// sheds with. One second: long enough to drain a queue slot of typical
// interactive queries, short enough that a backoff client converges
// quickly once load drops.
const retryAfterSeconds = "1"

// withRecovery is the outermost middleware: a panicking handler must
// cost one 500, not the daemon — every other client's sessions, the
// engine cache and the WAL all live in this process. The panic is
// counted (tsgserve_panics_total) and answered with 500 if the
// response hasn't started.
func (s *Server) withRecovery(w http.ResponseWriter, r *http.Request, h http.Handler) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			s.failures.Add(1)
			// Best effort: if the handler already started the response
			// this write is a no-op plus a log line from net/http.
			s.writeErrorStatus(w, http.StatusInternalServerError, "internal panic (recovered)")
		}
	}()
	h.ServeHTTP(w, r)
}
