package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

// tsgText serialises a graph to .tsg text.
func tsgText(t testing.TB, g *sg.Graph) string {
	t.Helper()
	var b bytes.Buffer
	if err := netlist.WriteTSG(&b, g); err != nil {
		t.Fatalf("WriteTSG: %v", err)
	}
	return b.String()
}

// postJSON posts a JSON request and decodes the JSON response into out,
// failing the test on a non-wantStatus reply.
func postJSON(t testing.TB, srv *httptest.Server, path string, req, out interface{}, wantStatus int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	g := gen.Oscillator()
	text := tsgText(t, g)
	want, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Upload by raw .tsg body (the curl path).
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var up UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding upload: %v", err)
	}
	resp.Body.Close()
	if up.Fingerprint != sg.Fingerprint(g) {
		t.Fatalf("upload fingerprint %s != structural fingerprint %s", up.Fingerprint, sg.Fingerprint(g))
	}
	if up.Events != g.NumEvents() || up.Arcs != g.NumArcs() {
		t.Fatalf("upload summary %d/%d, want %d/%d", up.Events, up.Arcs, g.NumEvents(), g.NumArcs())
	}
	if up.EngineCached {
		t.Fatal("first upload reported a cached engine")
	}

	// Analyze by fingerprint reference: must match the in-process λ and
	// report the warm engine.
	var an AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &an, http.StatusOK)
	if an.Lambda.Float != want.CycleTime.Float() || an.Lambda.Text != want.CycleTime.Normalize().String() {
		t.Fatalf("served λ = %+v, want %v", an.Lambda, want.CycleTime)
	}
	if !an.EngineCached {
		t.Fatal("fingerprint analyze did not hit the engine cache")
	}
	if len(an.Critical) == 0 || len(an.Critical[0].Events) == 0 {
		t.Fatalf("no critical cycles served: %+v", an)
	}

	// Analyze by inline text: same fingerprint, still a cache hit.
	var an2 AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: GraphRef{Graph: text}}, &an2, http.StatusOK)
	if an2.Fingerprint != up.Fingerprint || !an2.EngineCached {
		t.Fatalf("inline analyze: fingerprint %s cached=%v, want %s cached=true", an2.Fingerprint, an2.EngineCached, up.Fingerprint)
	}

	// Slacks: feasible and tight where the critical cycle runs.
	var sl SlacksResponse
	postJSON(t, srv, "/v1/slacks", SlacksRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}}, &sl, http.StatusOK)
	if len(sl.Slacks) == 0 {
		t.Fatal("no slacks served")
	}
	tight := 0
	for _, s := range sl.Slacks {
		if s.Slack < 0 {
			t.Fatalf("negative slack: %+v", s)
		}
		if s.Tight {
			tight++
		}
	}
	if tight == 0 {
		t.Fatal("no tight arcs in the slack report")
	}

	// Batched what-if: answers must match the engine oracle. Wire arc
	// indices are canonical ranks, so local indices map through the
	// canonical order.
	eng, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	order := sg.CanonicalArcOrder(g)
	rank := make([]int, len(order))
	for k, i := range order {
		rank[i] = k
	}
	var queries []WhatIfQuery
	var cands []cycletime.WhatIf
	for i := 0; i < g.NumArcs(); i++ {
		d := g.Arc(i).Delay * 2
		queries = append(queries, WhatIfQuery{Arc: rank[i], Delay: d})
		cands = append(cands, cycletime.WhatIf{Arc: i, Delay: d})
	}
	wantLams, err := eng.SensitivitySweep(cands)
	if err != nil {
		t.Fatalf("SensitivitySweep: %v", err)
	}
	var wi WhatIfResponse
	postJSON(t, srv, "/v1/whatif", WhatIfRequest{GraphRef: GraphRef{Fingerprint: up.Fingerprint}, Queries: queries}, &wi, http.StatusOK)
	if len(wi.Lambdas) != len(queries) {
		t.Fatalf("%d what-if answers for %d queries", len(wi.Lambdas), len(queries))
	}
	for i, lam := range wi.Lambdas {
		if lam.Text != wantLams[i].Normalize().String() {
			t.Fatalf("what-if %d: served %s, oracle %v", i, lam.Text, wantLams[i])
		}
	}
	if wi.Stats.FastPathHits+wi.Stats.TableAnswers+wi.Stats.Analyses == 0 {
		t.Fatalf("what-if stats empty: %+v", wi.Stats)
	}

	// Monte-Carlo under explicit jitter, pinned workers for
	// reproducibility against the in-process oracle.
	var mc MCResponse
	postJSON(t, srv, "/v1/mc", MCRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Samples:  64, Seed: 7, Jitter: 0.1, Workers: 1,
		Quantiles: []float64{0.5},
	}, &mc, http.StatusOK)
	jm, err := gen.UniformJitter(g, 0.1)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	wantMC, err := eng.AnalyzeMC(jm, cycletime.MCOptions{Samples: 64, Seed: 7, Workers: 1, Quantiles: []float64{0.5}})
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	if mc.Mean != wantMC.Mean || mc.Samples != wantMC.Samples || mc.Min != wantMC.Min || mc.Max != wantMC.Max {
		t.Fatalf("served MC %+v, oracle mean=%g min=%g max=%g", mc, wantMC.Mean, wantMC.Min, wantMC.Max)
	}

	// A tiny sample budget leaves the confidence intervals undefined
	// (+Inf in process); the wire must still be valid JSON with the -1
	// sentinel, never an empty 200.
	var tiny MCResponse
	postJSON(t, srv, "/v1/mc", MCRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Samples:  1, Seed: 7, Jitter: 0.1, Workers: 1, Quantiles: []float64{0.5},
	}, &tiny, http.StatusOK)
	if tiny.Samples != 1 || tiny.MeanCIHalf != -1 {
		t.Fatalf("tiny MC run: %+v, want samples=1 with mean_ci_half=-1", tiny)
	}
	for _, q := range tiny.Quantiles {
		if q.CIHalf != -1 {
			t.Fatalf("tiny MC quantile CI = %g, want -1 sentinel", q.CIHalf)
		}
	}

	// Health and metrics.
	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	hr.Body.Close()
	if !health.OK || health.Graphs != 1 {
		t.Fatalf("healthz = %+v, want ok with 1 graph", health)
	}
	mr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var mb bytes.Buffer
	if _, err := mb.ReadFrom(mr.Body); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	mr.Body.Close()
	metrics := mb.String()
	for _, want := range []string{
		"tsgserve_http_requests_total{endpoint=\"analyze\"} 2",
		"tsgserve_http_requests_total{endpoint=\"whatif\"} 1",
		"tsgserve_engine_compiles_total 1",
		"tsgserve_engine_cache_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServerCrossDeclarationOrder pins the canonical-index contract:
// two clients hold the same graph with the arcs declared in different
// orders, share one cached engine (the fingerprint is order-invariant)
// — and still each read every wire arc index correctly, because wire
// indices are canonical ranks both sides compute locally.
func TestServerCrossDeclarationOrder(t *testing.T) {
	textA := "tsg g\nevent x\nevent y\narc x y 1\narc y x 2 marked\n"
	textB := "tsg g\nevent y\nevent x\narc y x 2 marked\narc x y 1\n"
	gB, err := netlist.ReadTSG(strings.NewReader(textB))
	if err != nil {
		t.Fatalf("ReadTSG: %v", err)
	}

	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Client A uploads its ordering.
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(textA))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var up UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding upload: %v", err)
	}
	resp.Body.Close()
	if up.Fingerprint != sg.Fingerprint(gB) {
		t.Fatal("fixture broken: orderings do not share a fingerprint")
	}

	// Client B queries by fingerprint about ITS local arc 0 (y->x,
	// delay 2): raising it to 9 must give λ = 10 (cycle 1+9), which is
	// what B's own engine says — and would NOT be what A's arc 0
	// (x->y, delay 1) gives.
	orderB := sg.CanonicalArcOrder(gB)
	rankB := make([]int, len(orderB))
	for k, i := range orderB {
		rankB[i] = k
	}
	engB, err := cycletime.NewEngine(gB)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want, err := engB.Sensitivity(0, 9)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	var wi WhatIfResponse
	postJSON(t, srv, "/v1/whatif", WhatIfRequest{
		GraphRef: GraphRef{Fingerprint: up.Fingerprint},
		Queries:  []WhatIfQuery{{Arc: rankB[0], Delay: 9}},
	}, &wi, http.StatusOK)
	if wi.Lambdas[0].Text != want.Normalize().String() {
		t.Fatalf("cross-order what-if: served %s, B's oracle %v", wi.Lambdas[0].Text, want)
	}
	if st := s.Cache().Stats(); st.Compiles != 1 {
		t.Fatalf("%d compiles — the orderings did not share the engine", st.Compiles)
	}
}

// TestServerEdit drives the edit→analyze loop over HTTP: committed
// edits move the shared session baseline for every later query, the
// post-edit λ matches an in-process analysis of the edited graph, the
// analyses are incremental (the stats split pins it), and reset
// restores the upload.
func TestServerEdit(t *testing.T) {
	g, err := gen.Stack(7)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var up UploadResponse
	resp, err := srv.Client().Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(tsgText(t, g)))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding upload: %v", err)
	}
	resp.Body.Close()
	ref := GraphRef{Fingerprint: up.Fingerprint}

	// Warm the engine, then commit a few edits and pin each λ against
	// the in-process analysis of the accumulated edits.
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: ref}, nil, http.StatusOK)
	order := sg.CanonicalArcOrder(g)
	cur := g
	var lastStats EngineStats
	for step, wireArc := range []int{0, 3, 0, 7} {
		d := cur.Arc(order[wireArc]).Delay + float64(step) + 1.5
		// Critical cycles only on request (the λ-only default keeps the
		// loop simulation-free); alternate to cover both forms.
		wantCrit := step%2 == 1
		var er EditResponse
		postJSON(t, srv, "/v1/edit",
			EditRequest{GraphRef: ref, Edits: []DelayEdit{{Arc: wireArc, Delay: d}}, Criticals: wantCrit},
			&er, http.StatusOK)
		if cur, err = cur.WithArcDelay(order[wireArc], d); err != nil {
			t.Fatalf("WithArcDelay: %v", err)
		}
		want, err := cycletime.Analyze(cur)
		if err != nil {
			t.Fatalf("oracle Analyze: %v", err)
		}
		if er.Lambda.Text != want.CycleTime.Normalize().String() {
			t.Fatalf("step %d: edited λ = %s, want %v", step, er.Lambda.Text, want.CycleTime)
		}
		if er.Applied != 1 {
			t.Fatalf("step %d: applied = %d, want 1", step, er.Applied)
		}
		if gotCrit := len(er.Critical) > 0; gotCrit != wantCrit {
			t.Fatalf("step %d: criticals present = %v, requested %v", step, gotCrit, wantCrit)
		}
		if wantCrit && len(er.Critical) != len(want.Critical) {
			t.Fatalf("step %d: %d critical cycles, want %d", step, len(er.Critical), len(want.Critical))
		}
		lastStats = er.Stats
	}
	if lastStats.IncrementalAnalyses == 0 {
		t.Errorf("edit loop never used the incremental path: stats %+v", lastStats)
	}
	// Later plain queries see the edited baseline…
	var ar AnalyzeResponse
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{GraphRef: ref}, &ar, http.StatusOK)
	want, err := cycletime.Analyze(cur)
	if err != nil {
		t.Fatalf("oracle Analyze: %v", err)
	}
	if ar.Lambda.Text != want.CycleTime.Normalize().String() {
		t.Fatalf("post-edit analyze λ = %s, want %v", ar.Lambda.Text, want.CycleTime)
	}
	// …and reset restores the upload.
	var rr EditResponse
	postJSON(t, srv, "/v1/edit", EditRequest{GraphRef: ref, Reset: true}, &rr, http.StatusOK)
	base, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("base Analyze: %v", err)
	}
	if rr.Lambda.Text != base.CycleTime.Normalize().String() {
		t.Fatalf("reset λ = %s, want %v", rr.Lambda.Text, base.CycleTime)
	}
	// The metrics split reports the incremental analyses.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var mb bytes.Buffer
	if _, err := mb.ReadFrom(mresp.Body); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	mresp.Body.Close()
	metrics := mb.String()
	for _, want := range []string{
		"tsgserve_http_requests_total{endpoint=\"edit\"} 5",
		"tsgserve_engine_analyses{mode=\"full\"}",
		"tsgserve_engine_analyses{mode=\"incremental\"}",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Edit validation and pass-through behavior.
	postJSON(t, srv, "/v1/edit", EditRequest{GraphRef: ref}, nil, http.StatusBadRequest)
	postJSON(t, srv, "/v1/edit",
		EditRequest{GraphRef: ref, Edits: []DelayEdit{{Arc: 9999, Delay: 1}}}, nil, http.StatusBadRequest)
	postJSON(t, srv, "/v1/edit",
		EditRequest{GraphRef: ref, Edits: []DelayEdit{{Arc: 0, Delay: -1}}}, nil, http.StatusBadRequest)
	passthrough := httptest.NewServer(New(Config{CacheBytes: -1}))
	defer passthrough.Close()
	postJSON(t, passthrough, "/v1/edit",
		EditRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}, Edits: []DelayEdit{{Arc: 0, Delay: 1}}},
		nil, http.StatusServiceUnavailable)
}

func TestServerErrors(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Unknown fingerprint: 404.
	postJSON(t, srv, "/v1/analyze",
		AnalyzeRequest{GraphRef: GraphRef{Fingerprint: strings.Repeat("ab", 32)}}, nil, http.StatusNotFound)
	// No graph reference at all: 400.
	postJSON(t, srv, "/v1/analyze", AnalyzeRequest{}, nil, http.StatusBadRequest)
	// Unparsable graph: 400.
	postJSON(t, srv, "/v1/analyze",
		AnalyzeRequest{GraphRef: GraphRef{Graph: "not a tsg file"}}, nil, http.StatusBadRequest)
	// Parsable but uncompilable graph (nothing repetitive to time):
	// still the client's data, still 400 — not a server failure.
	postJSON(t, srv, "/v1/analyze",
		AnalyzeRequest{GraphRef: GraphRef{Graph: "tsg t\nevent a nonrepetitive\nevent b nonrepetitive\narc a b 1 once\n"}},
		nil, http.StatusBadRequest)
	// Empty what-if batch: 400.
	g := gen.Oscillator()
	postJSON(t, srv, "/v1/whatif",
		WhatIfRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}}, nil, http.StatusBadRequest)
	// Out-of-range what-if arc: 400.
	postJSON(t, srv, "/v1/whatif",
		WhatIfRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}, Queries: []WhatIfQuery{{Arc: 9999, Delay: 1}}},
		nil, http.StatusBadRequest)
	// Malformed JSON: 400.
	resp, err := srv.Client().Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Uploading to a cache-disabled (pass-through) server: 503 with a
	// clear message, never a fingerprint that would 404 on first use.
	passthrough := httptest.NewServer(New(Config{CacheBytes: -1}))
	defer passthrough.Close()
	resp0, err := passthrough.Client().Post(passthrough.URL+"/v1/graphs", "text/plain", strings.NewReader(tsgText(t, g)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload to pass-through server: status %d, want 503", resp0.StatusCode)
	}
	// Inline queries still work there.
	postJSON(t, passthrough, "/v1/analyze",
		AnalyzeRequest{GraphRef: GraphRef{Graph: tsgText(t, g)}}, nil, http.StatusOK)

	// Body over the limit: 413.
	small := New(Config{MaxBodyBytes: 64})
	srv2 := httptest.NewServer(small)
	defer srv2.Close()
	resp, err = srv2.Client().Post(srv2.URL+"/v1/graphs", "text/plain",
		strings.NewReader(strings.Repeat("x", 1024)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	// Many clients, two graphs, mixed analyze/what-if traffic; all
	// answers must agree with the per-graph oracle. Runs under the CI
	// race step.
	osc := gen.Oscillator()
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	graphs := []*sg.Graph{osc, ring}
	texts := []string{tsgText(t, osc), tsgText(t, ring)}
	var wantLam [2]string
	for i, g := range graphs {
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		wantLam[i] = res.CycleTime.Normalize().String()
	}

	s := New(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const clients = 8
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < 12; i++ {
				k := (c + i) % 2
				var an AnalyzeResponse
				body, _ := json.Marshal(AnalyzeRequest{GraphRef: GraphRef{Graph: texts[k]}})
				resp, err := srv.Client().Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&an)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if an.Lambda.Text != wantLam[k] {
					errCh <- fmt.Errorf("client %d: graph %d λ = %s, want %s", c, k, an.Lambda.Text, wantLam[k])
					return
				}
			}
			errCh <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Cache().Stats()
	if st.Compiles != 2 {
		t.Fatalf("%d compiles for 2 distinct graphs under concurrency, want 2 (singleflight + cache)", st.Compiles)
	}
}
