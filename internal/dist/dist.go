// Package dist models arc-delay uncertainty for the statistical timing
// subsystem: delay distributions with closed-form quantile functions,
// and a per-arc delay Model with deterministic seeded sampling and
// correlation groups.
//
// The paper's algorithm takes fixed delays; its own motivation —
// evaluating a design's performance inside the edit loop — is exactly
// where delays are uncertain. The statistical-timing literature (see
// PAPERS.md: post-silicon tuning, statistical criticality) treats
// delays as distributions and asks for cycle-time quantiles and
// per-element criticality. This package supplies the distribution
// layer; internal/cycletime's AnalyzeMC/SlacksMC evaluate it by
// Monte-Carlo over the compiled simulation kernel.
//
// Every distribution exposes its quantile (inverse-CDF) function, so a
// sample is a deterministic function of one uniform variate. That is
// what makes the subsystem reproducible (same seed, same estimates —
// see Model.SampleInto) and what implements correlation: arcs in the
// same correlation group share the uniform variate of a sample, so
// they move together through their respective quantiles (comonotone
// sampling). With proportional supports — e.g. uniform(0.9·d, 1.1·d)
// on every arc of the group — a shared variate IS a shared scale
// factor, modelling common process variation.
//
// Distributions are restricted to non-negative support: arc delays
// must stay valid under every sample.
package dist

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the supported distribution families.
type Kind uint8

const (
	// KindPoint is a degenerate distribution: the delay is certain.
	KindPoint Kind = iota
	// KindUniform is continuous uniform on [Lo, Hi].
	KindUniform
	// KindNormal is a normal distribution truncated to [Lo, Hi].
	KindNormal
	// KindTriangular is triangular on [Lo, Hi] with the given mode.
	KindTriangular
	// KindDiscrete is a finite empirical distribution (values with
	// probabilities).
	KindDiscrete
)

// Dist is one delay distribution. The zero value is Point(0). A Dist is
// immutable after construction and safe for concurrent use.
type Dist struct {
	kind Kind
	// a..d hold the family parameters:
	//   point:      a = value
	//   uniform:    a = lo, b = hi
	//   normal:     a = mean, b = sigma, c = lo, d = hi (truncation)
	//   triangular: a = lo, b = mode, c = hi
	a, b, c, d float64
	// vals/cum hold the discrete support, sorted ascending, with the
	// cumulative probabilities (cum[len-1] == 1).
	vals, cum []float64
}

// Point returns the degenerate distribution concentrated at v.
func Point(v float64) (Dist, error) {
	if v < 0 || math.IsNaN(v) {
		return Dist{}, fmt.Errorf("dist: invalid point delay %g", v)
	}
	return Dist{kind: KindPoint, a: v}, nil
}

// Uniform returns the continuous uniform distribution on [lo, hi].
// lo == hi degenerates to a point.
func Uniform(lo, hi float64) (Dist, error) {
	if err := checkRange("uniform", lo, hi); err != nil {
		return Dist{}, err
	}
	return Dist{kind: KindUniform, a: lo, b: hi}, nil
}

// Normal returns a normal distribution with the given mean and standard
// deviation, truncated to [max(0, mean-4·sigma), mean+4·sigma] so the
// support stays non-negative and bounded (bounded supports are what the
// interval analysis AnalyzeBounds can cross-check).
func Normal(mean, sigma float64) (Dist, error) {
	lo := mean - 4*sigma
	if lo < 0 {
		lo = 0
	}
	return NormalTrunc(mean, sigma, lo, mean+4*sigma)
}

// NormalTrunc returns a normal distribution truncated to [lo, hi].
func NormalTrunc(mean, sigma, lo, hi float64) (Dist, error) {
	if math.IsNaN(mean) || math.IsNaN(sigma) || sigma < 0 {
		return Dist{}, fmt.Errorf("dist: invalid normal(%g, %g)", mean, sigma)
	}
	if err := checkRange("normal truncation", lo, hi); err != nil {
		return Dist{}, err
	}
	if sigma == 0 || lo == hi {
		v := math.Min(math.Max(mean, lo), hi)
		return Dist{kind: KindPoint, a: v}, nil
	}
	return Dist{kind: KindNormal, a: mean, b: sigma, c: lo, d: hi}, nil
}

// Triangular returns the triangular distribution on [lo, hi] with the
// given mode.
func Triangular(lo, mode, hi float64) (Dist, error) {
	if err := checkRange("triangular", lo, hi); err != nil {
		return Dist{}, err
	}
	if math.IsNaN(mode) || mode < lo || mode > hi {
		return Dist{}, fmt.Errorf("dist: triangular mode %g outside [%g, %g]", mode, lo, hi)
	}
	if lo == hi {
		return Dist{kind: KindPoint, a: lo}, nil
	}
	return Dist{kind: KindTriangular, a: lo, b: mode, c: hi}, nil
}

// Discrete returns the empirical distribution taking values[i] with
// probability weights[i]/Σweights. Weights must be non-negative with a
// positive sum. Values are sorted internally so the quantile function
// is monotone (required for comonotone correlation groups).
func Discrete(values, weights []float64) (Dist, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return Dist{}, fmt.Errorf("dist: discrete needs matching non-empty values/weights, got %d/%d",
			len(values), len(weights))
	}
	type vw struct{ v, w float64 }
	pairs := make([]vw, 0, len(values))
	total := 0.0
	for i, v := range values {
		w := weights[i]
		if v < 0 || math.IsNaN(v) {
			return Dist{}, fmt.Errorf("dist: invalid discrete value %g", v)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Dist{}, fmt.Errorf("dist: invalid discrete weight %g", w)
		}
		if w == 0 {
			continue
		}
		pairs = append(pairs, vw{v, w})
		total += w
	}
	if total <= 0 {
		return Dist{}, fmt.Errorf("dist: discrete weights sum to %g, need > 0", total)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	d := Dist{kind: KindDiscrete}
	acc := 0.0
	for _, p := range pairs {
		acc += p.w
		// Merge duplicate values into one step of the CDF.
		if n := len(d.vals); n > 0 && d.vals[n-1] == p.v {
			d.cum[n-1] = acc / total
			continue
		}
		d.vals = append(d.vals, p.v)
		d.cum = append(d.cum, acc/total)
	}
	d.cum[len(d.cum)-1] = 1
	if len(d.vals) == 1 {
		return Dist{kind: KindPoint, a: d.vals[0]}, nil
	}
	return d, nil
}

func checkRange(what string, lo, hi float64) error {
	if lo < 0 || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(hi, 0) || hi < lo {
		return fmt.Errorf("dist: invalid %s range [%g, %g]", what, lo, hi)
	}
	return nil
}

// Kind returns the distribution family.
func (d Dist) Kind() Kind { return d.kind }

// IsPoint reports whether the distribution is degenerate (a certain
// delay). Point arcs consume no randomness during sampling.
func (d Dist) IsPoint() bool { return d.kind == KindPoint }

// Support returns the smallest interval containing all probability
// mass.
func (d Dist) Support() (lo, hi float64) {
	switch d.kind {
	case KindPoint:
		return d.a, d.a
	case KindUniform:
		return d.a, d.b
	case KindNormal:
		return d.c, d.d
	case KindTriangular:
		return d.a, d.c
	default:
		return d.vals[0], d.vals[len(d.vals)-1]
	}
}

// Mean returns the expected value.
func (d Dist) Mean() float64 {
	switch d.kind {
	case KindPoint:
		return d.a
	case KindUniform:
		return (d.a + d.b) / 2
	case KindNormal:
		// Mean of the truncated normal: μ + σ·(φ(α)−φ(β))/Z.
		alpha, beta := (d.c-d.a)/d.b, (d.d-d.a)/d.b
		z := stdCDF(beta) - stdCDF(alpha)
		if z <= 0 {
			return math.Min(math.Max(d.a, d.c), d.d)
		}
		return d.a + d.b*(stdPDF(alpha)-stdPDF(beta))/z
	case KindTriangular:
		return (d.a + d.b + d.c) / 3
	default:
		m, prev := 0.0, 0.0
		for i, v := range d.vals {
			m += v * (d.cum[i] - prev)
			prev = d.cum[i]
		}
		return m
	}
}

// Quantile returns the inverse CDF at u ∈ [0, 1): the value x with
// P(X <= x) >= u. It is monotone in u, which is what makes shared-
// variate correlation groups comonotone.
func (d Dist) Quantile(u float64) float64 {
	switch d.kind {
	case KindPoint:
		return d.a
	case KindUniform:
		return d.a + u*(d.b-d.a)
	case KindNormal:
		fa, fb := stdCDF((d.c-d.a)/d.b), stdCDF((d.d-d.a)/d.b)
		x := d.a + d.b*stdQuantile(fa+u*(fb-fa))
		// Clamp against float drift at the truncation edges.
		return math.Min(math.Max(x, d.c), d.d)
	case KindTriangular:
		span := d.c - d.a
		fMode := (d.b - d.a) / span
		if u < fMode {
			return d.a + math.Sqrt(u*span*(d.b-d.a))
		}
		return d.c - math.Sqrt((1-u)*span*(d.c-d.b))
	default:
		// First value whose cumulative probability covers u.
		i := sort.SearchFloat64s(d.cum, u)
		if i == len(d.cum) || (d.cum[i] == u && i+1 < len(d.cum)) {
			// cum[i] == u sits exactly on a step boundary: mass up to u
			// is fully covered by values <= vals[i], and u < 1 means the
			// draw belongs to the next value.
			if i == len(d.cum) {
				i--
			} else {
				i++
			}
		}
		if i >= len(d.vals) {
			i = len(d.vals) - 1
		}
		return d.vals[i]
	}
}

// String renders the distribution in the .tsg annotation syntax parsed
// by Parse (and by the netlist reader's ~ arc attribute).
func (d Dist) String() string {
	switch d.kind {
	case KindPoint:
		return fmt.Sprintf("point(%g)", d.a)
	case KindUniform:
		return fmt.Sprintf("uniform(%g,%g)", d.a, d.b)
	case KindNormal:
		return fmt.Sprintf("normal(%g,%g,%g,%g)", d.a, d.b, d.c, d.d)
	case KindTriangular:
		return fmt.Sprintf("tri(%g,%g,%g)", d.a, d.b, d.c)
	default:
		var sb strings.Builder
		sb.WriteString("choice(")
		prev := 0.0
		for i, v := range d.vals {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g:%g", v, d.cum[i]-prev)
			prev = d.cum[i]
		}
		sb.WriteByte(')')
		return sb.String()
	}
}

// Parse reads the annotation syntax String produces:
//
//	point(v)
//	uniform(lo,hi)
//	normal(mean,sigma)            truncated to [max(0,μ−4σ), μ+4σ]
//	normal(mean,sigma,lo,hi)
//	tri(lo,mode,hi)
//	choice(v1:w1,v2:w2,...)
func Parse(s string) (Dist, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Dist{}, fmt.Errorf("dist: malformed distribution %q (want name(args))", s)
	}
	name := strings.TrimSpace(s[:open])
	body := s[open+1 : len(s)-1]
	var args []string
	if strings.TrimSpace(body) != "" {
		args = strings.Split(body, ",")
	}
	num := func(tok string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return 0, fmt.Errorf("dist: %s: bad number %q", name, strings.TrimSpace(tok))
		}
		return v, nil
	}
	nums := func(want int) ([]float64, error) {
		if len(args) != want {
			return nil, fmt.Errorf("dist: %s takes %d arguments, got %d", name, want, len(args))
		}
		out := make([]float64, want)
		for i, a := range args {
			v, err := num(a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "point":
		v, err := nums(1)
		if err != nil {
			return Dist{}, err
		}
		return Point(v[0])
	case "uniform":
		v, err := nums(2)
		if err != nil {
			return Dist{}, err
		}
		return Uniform(v[0], v[1])
	case "normal":
		if len(args) == 2 {
			v, err := nums(2)
			if err != nil {
				return Dist{}, err
			}
			return Normal(v[0], v[1])
		}
		v, err := nums(4)
		if err != nil {
			return Dist{}, err
		}
		return NormalTrunc(v[0], v[1], v[2], v[3])
	case "tri":
		v, err := nums(3)
		if err != nil {
			return Dist{}, err
		}
		return Triangular(v[0], v[1], v[2])
	case "choice":
		if len(args) == 0 {
			return Dist{}, fmt.Errorf("dist: choice needs at least one value:weight pair")
		}
		vals := make([]float64, len(args))
		weights := make([]float64, len(args))
		for i, a := range args {
			a = strings.TrimSpace(a)
			colon := strings.IndexByte(a, ':')
			if colon < 0 {
				return Dist{}, fmt.Errorf("dist: choice pair %q missing ':'", a)
			}
			v, err := num(a[:colon])
			if err != nil {
				return Dist{}, err
			}
			w, err := num(a[colon+1:])
			if err != nil {
				return Dist{}, err
			}
			vals[i], weights[i] = v, w
		}
		return Discrete(vals, weights)
	default:
		return Dist{}, fmt.Errorf("dist: unknown distribution %q", name)
	}
}

// --- standard-normal helpers -------------------------------------------

func stdPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

func stdCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// stdQuantile is Φ⁻¹, clamped away from the infinities at p ∈ {0, 1}.
func stdQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	default:
		return math.Sqrt2 * math.Erfinv(2*p-1)
	}
}
