package dist

import (
	"fmt"
	"math"
)

// Model assigns a delay distribution to every arc of a graph (by arc
// index) plus optional correlation groups. It is the input to the
// Monte-Carlo analyses: cycletime.AnalyzeMC draws whole delay vectors
// from it with SampleInto.
//
// A freshly built model is deterministic — every arc a point at its
// nominal delay — so Monte-Carlo over it reproduces the fixed-delay
// analysis exactly (the differential pin the tests enforce). SetArc
// replaces individual distributions; Correlate ties arcs into a group
// that shares the uniform variate of each sample, so grouped arcs move
// together through their quantile functions (a common scale factor
// when their supports are proportional).
//
// Sampling is counter-based: sample i is a pure function of (seed, i),
// independent of which worker evaluates it or in what order, which is
// what makes the Monte-Carlo engine's estimates reproducible.
//
// A Model is not safe for concurrent mutation; concurrent SampleInto
// calls are safe once the model is no longer being edited.
type Model struct {
	dists []Dist
	group []int32 // correlation group per arc, -1 = independent
	// compiled sampling plan (rebuilt lazily after edits):
	dirty      bool
	compiled   bool
	base       []float64 // per-arc sample base: point values (random arcs overwritten)
	randomArcs []int32   // non-point arcs, ascending
	dense      []int32   // per-arc dense group id (-1 independent); user ids in group stay untouched
	ngroups    int       // dense groups referenced by a random arc: 0..ngroups-1
}

// NewModel returns the deterministic model over the given nominal
// delays: arc i is Point(nominal[i]).
func NewModel(nominal []float64) (*Model, error) {
	m := &Model{
		dists: make([]Dist, len(nominal)),
		group: make([]int32, len(nominal)),
	}
	for i, v := range nominal {
		d, err := Point(v)
		if err != nil {
			return nil, fmt.Errorf("dist: arc %d: %w", i, err)
		}
		m.dists[i] = d
		m.group[i] = -1
	}
	return m, nil
}

// NumArcs returns the number of arcs the model covers.
func (m *Model) NumArcs() int { return len(m.dists) }

// Dist returns arc i's distribution.
func (m *Model) Dist(i int) Dist { return m.dists[i] }

// Group returns arc i's correlation group, or -1 when independent.
func (m *Model) Group(i int) int { return int(m.group[i]) }

// SetArc replaces arc i's delay distribution.
func (m *Model) SetArc(i int, d Dist) error {
	if i < 0 || i >= len(m.dists) {
		return fmt.Errorf("dist: arc index %d out of range [0,%d)", i, len(m.dists))
	}
	if lo, _ := d.Support(); lo < 0 || math.IsNaN(lo) {
		return fmt.Errorf("dist: arc %d: negative delay support %g", i, lo)
	}
	m.dists[i] = d
	m.dirty = true
	return nil
}

// SetGroup puts arc i into correlation group g (g >= 0), or makes it
// independent again (g < 0). Arcs of one group share the uniform
// variate of every sample.
func (m *Model) SetGroup(i, g int) error {
	if i < 0 || i >= len(m.dists) {
		return fmt.Errorf("dist: arc index %d out of range [0,%d)", i, len(m.dists))
	}
	if g < 0 {
		m.group[i] = -1
	} else {
		m.group[i] = int32(g)
	}
	m.dirty = true
	return nil
}

// Correlate ties the given arcs into a fresh correlation group and
// returns its id.
func (m *Model) Correlate(arcs ...int) (int, error) {
	g := 0
	for _, gi := range m.group {
		if int(gi) >= g {
			g = int(gi) + 1
		}
	}
	for _, i := range arcs {
		if err := m.SetGroup(i, g); err != nil {
			return 0, err
		}
	}
	return g, nil
}

// Deterministic reports whether every arc is a point distribution, in
// which case every sample equals the nominal delay vector.
func (m *Model) Deterministic() bool {
	m.compile()
	return len(m.randomArcs) == 0
}

// RandomArcs returns the number of arcs with non-degenerate
// distributions.
func (m *Model) RandomArcs() int {
	m.compile()
	return len(m.randomArcs)
}

// Support returns the support bounds of arc i's distribution — the
// per-arc [lo, hi] interval a bounds analysis (cycletime.AnalyzeBounds)
// can bracket the Monte-Carlo estimates with.
func (m *Model) Support(i int) (lo, hi float64) { return m.dists[i].Support() }

// MeanInto fills out with the per-arc expected delays.
func (m *Model) MeanInto(out []float64) {
	for i, d := range m.dists {
		out[i] = d.Mean()
	}
}

// compile rebuilds the sampling plan: the ascending list of random
// arcs, and a private dense renumbering of the correlation groups
// referenced by them (by first appearance over ascending arcs, so the
// variate stream depends only on the partition, not on the caller's id
// choice). The user-assigned ids in m.group are never modified — the
// model stays editable between sampling runs without groups silently
// splitting or merging.
func (m *Model) compile() {
	if m.compiled && !m.dirty {
		return
	}
	m.randomArcs = m.randomArcs[:0]
	if m.base == nil {
		m.base = make([]float64, len(m.dists))
	}
	if m.dense == nil {
		m.dense = make([]int32, len(m.dists))
	}
	remap := map[int32]int32{}
	for i, d := range m.dists {
		m.base[i] = d.a
		m.dense[i] = -1
		if d.IsPoint() {
			continue
		}
		m.randomArcs = append(m.randomArcs, int32(i))
		if g := m.group[i]; g >= 0 {
			dg, ok := remap[g]
			if !ok {
				dg = int32(len(remap))
				remap[g] = dg
			}
			m.dense[i] = dg
		}
	}
	m.ngroups = len(remap)
	m.dirty = false
	m.compiled = true
}

// SampleInto fills out (len NumArcs) with sample idx of the delay
// vector under the given seed. Sample idx is a pure function of
// (model, seed, idx): group variates are drawn first (one per
// referenced group, in dense group order), then one variate per
// independent random arc in ascending arc order; point arcs consume no
// randomness. Safe for concurrent use with distinct out buffers once
// the model is no longer edited AND the sampling plan has been compiled
// — any post-edit call to SampleInto, Deterministic or RandomArcs
// compiles it; concurrent first calls race on the lazy compile.
func (m *Model) SampleInto(seed, idx uint64, out []float64) {
	m.compile()
	copy(out, m.base) // point values; random arcs overwritten below
	if len(m.randomArcs) == 0 {
		return
	}
	r := newSampleRNG(seed, idx)
	var groupU [maxStackGroups]float64
	gu := groupU[:0]
	if m.ngroups > len(groupU) {
		gu = make([]float64, 0, m.ngroups)
	}
	for g := 0; g < m.ngroups; g++ {
		gu = append(gu, r.float64())
	}
	for _, ai := range m.randomArcs {
		var u float64
		if g := m.dense[ai]; g >= 0 {
			u = gu[g]
		} else {
			u = r.float64()
		}
		out[ai] = m.dists[ai].Quantile(u)
	}
}

const maxStackGroups = 16

// JitterUniform builds the uniform ±frac jitter model over the nominal
// delays: arc i ~ uniform((1−frac)·d, (1+frac)·d). Zero-delay arcs stay
// points. This is the distributional counterpart of cycletime.Jitter,
// supported on exactly the interval the bounds analysis brackets.
func JitterUniform(nominal []float64, frac float64) (*Model, error) {
	return jitterModel(nominal, frac, Uniform)
}

// JitterNormal builds the truncated-normal ±frac jitter model: arc
// i ~ normal(d, frac·d/3) truncated to [(1−frac)·d, (1+frac)·d], i.e.
// the same support as JitterUniform with mass concentrated at the
// nominal.
func JitterNormal(nominal []float64, frac float64) (*Model, error) {
	return jitterModel(nominal, frac, func(lo, hi float64) (Dist, error) {
		mean := (lo + hi) / 2
		return NormalTrunc(mean, (hi-lo)/6, lo, hi)
	})
}

func jitterModel(nominal []float64, frac float64, mk func(lo, hi float64) (Dist, error)) (*Model, error) {
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return nil, fmt.Errorf("dist: jitter fraction %g outside [0, 1]", frac)
	}
	m, err := NewModel(nominal)
	if err != nil {
		return nil, err
	}
	if frac == 0 {
		return m, nil
	}
	for i, v := range nominal {
		if v == 0 {
			continue
		}
		d, err := mk((1-frac)*v, (1+frac)*v)
		if err != nil {
			return nil, fmt.Errorf("dist: jitter arc %d: %w", i, err)
		}
		if err := m.SetArc(i, d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// --- counter-based RNG --------------------------------------------------

// sampleRNG is a splitmix64 stream keyed by (seed, sample index): cheap,
// statistically solid for Monte-Carlo, and — crucially — counter-based,
// so sample i draws the same variates no matter which worker evaluates
// it. Not cryptographic.
type sampleRNG struct{ s uint64 }

func newSampleRNG(seed, idx uint64) sampleRNG {
	// Decorrelate the per-sample streams: mix the index through one
	// splitmix round before xoring with the seed.
	z := (idx + 1) * 0xd1342543de82ef95
	z ^= z >> 32
	z *= 0x94d049bb133111eb
	return sampleRNG{s: seed ^ z}
}

func (r *sampleRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform variate in [0, 1).
func (r *sampleRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }
