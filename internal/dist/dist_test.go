package dist

import (
	"math"
	"strings"
	"testing"
)

// mustDist returns a closure unwrapping (Dist, error) constructor
// results against the test.
func mustDist(t *testing.T) func(Dist, error) Dist {
	return func(d Dist, err error) Dist {
		t.Helper()
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		return d
	}
}

// TestQuantileBasics: quantiles stay inside the support, are monotone
// in u, and hit the analytic values of each family.
func TestQuantileBasics(t *testing.T) {
	md := mustDist(t)
	dists := map[string]Dist{
		"point":    md(Point(3)),
		"uniform":  md(Uniform(2, 6)),
		"normal":   md(Normal(5, 0.5)),
		"normaltr": md(NormalTrunc(5, 2, 4, 7)),
		"tri":      md(Triangular(1, 2, 5)),
		"choice":   md(Discrete([]float64{4, 1, 2}, []float64{1, 2, 1})),
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			lo, hi := d.Support()
			if lo < 0 || hi < lo {
				t.Fatalf("support [%v, %v] invalid", lo, hi)
			}
			prev := math.Inf(-1)
			for u := 0.0; u < 1.0; u += 0.001 {
				x := d.Quantile(u)
				if x < lo-1e-12 || x > hi+1e-12 {
					t.Fatalf("Quantile(%v) = %v outside support [%v, %v]", u, x, lo, hi)
				}
				if x < prev-1e-12 {
					t.Fatalf("Quantile not monotone at u=%v: %v < %v", u, x, prev)
				}
				prev = x
			}
			// The quantile-sampled mean must converge to Mean().
			sum := 0.0
			const n = 20000
			for i := 0; i < n; i++ {
				sum += d.Quantile((float64(i) + 0.5) / n)
			}
			if got, want := sum/n, d.Mean(); math.Abs(got-want) > 5e-3*(1+math.Abs(want)) {
				t.Fatalf("quantile-integrated mean %v, Mean() = %v", got, want)
			}
		})
	}
	if got := dists["uniform"].Quantile(0.5); got != 4 {
		t.Fatalf("uniform median = %v, want 4", got)
	}
	if got := dists["tri"].Quantile(0.25); math.Abs(got-2) > 1e-12 {
		// F(mode) = (2-1)/(5-1) = 0.25 → the mode sits at u = 0.25.
		t.Fatalf("triangular quantile(0.25) = %v, want 2", got)
	}
	// Discrete: P(1)=0.5, P(2)=0.25, P(4)=0.25 after sorting.
	d := dists["choice"]
	if got := d.Quantile(0.2); got != 1 {
		t.Fatalf("choice quantile(0.2) = %v, want 1", got)
	}
	if got := d.Quantile(0.6); got != 2 {
		t.Fatalf("choice quantile(0.6) = %v, want 2", got)
	}
	if got := d.Quantile(0.9); got != 4 {
		t.Fatalf("choice quantile(0.9) = %v, want 4", got)
	}
}

// TestConstructorValidation: negative supports and malformed parameters
// are rejected; degenerate shapes collapse to points.
func TestConstructorValidation(t *testing.T) {
	md := mustDist(t)
	bad := []error{
		func() error { _, err := Point(-1); return err }(),
		func() error { _, err := Uniform(-1, 2); return err }(),
		func() error { _, err := Uniform(3, 2); return err }(),
		func() error { _, err := Triangular(1, 0.5, 2); return err }(),
		func() error { _, err := Triangular(-1, 0, 1); return err }(),
		func() error { _, err := Discrete(nil, nil); return err }(),
		func() error { _, err := Discrete([]float64{1}, []float64{0}); return err }(),
		func() error { _, err := Discrete([]float64{-1}, []float64{1}); return err }(),
		func() error { _, err := NormalTrunc(1, -0.5, 0, 2); return err }(),
		func() error { _, err := NormalTrunc(1, 0.5, 2, 1); return err }(),
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("invalid constructor %d accepted", i)
		}
	}
	if d := md(Uniform(2, 2)); !(d.Kind() == KindUniform) {
		// lo==hi uniform is fine (degenerate but harmless).
		_ = d
	}
	if d := md(NormalTrunc(3, 0, 1, 5)); !d.IsPoint() {
		t.Fatalf("zero-sigma normal should collapse to a point")
	}
	if d := md(Discrete([]float64{2, 2}, []float64{1, 3})); !d.IsPoint() {
		t.Fatalf("single-support discrete should collapse to a point")
	}
	if d := md(Normal(0.5, 1)); func() bool { lo, _ := d.Support(); return lo < 0 }() {
		t.Fatalf("Normal support dips below zero")
	}
}

// TestParseRoundTrip: String() output parses back to an identical
// distribution for every family.
func TestParseRoundTrip(t *testing.T) {
	md := mustDist(t)
	dists := []Dist{
		md(Point(2.5)),
		md(Uniform(1, 3)),
		md(Normal(4, 0.25)),
		md(NormalTrunc(4, 0.25, 3.5, 4.25)),
		md(Triangular(0, 1, 4)),
		md(Discrete([]float64{1, 2, 4}, []float64{1, 2, 1})),
	}
	for _, d := range dists {
		s := d.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got.String() != s {
			t.Fatalf("round trip %q -> %q", s, got.String())
		}
		for _, u := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
			if a, b := d.Quantile(u), got.Quantile(u); a != b {
				t.Fatalf("%q: quantile(%v) %v != %v after round trip", s, u, a, b)
			}
		}
	}
	// Trailing garbage in a number must error, not silently truncate (a
	// mistyped annotation must never load as a different distribution).
	for _, bad := range []string{"", "uniform", "uniform(1)", "uniform(1,x)", "frob(1,2)", "choice()", "choice(1)", "point(1,2)",
		"uniform(1.8.2,2.2)", "uniform(1.8,2.2x)", "choice(1a:2)", "choice(1:2b)", "tri(1,2,3z)"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	// Two-argument normal defaults its truncation.
	d, err := Parse("normal(10,1)")
	if err != nil {
		t.Fatalf("Parse(normal/2): %v", err)
	}
	if lo, hi := d.Support(); lo != 6 || hi != 14 {
		t.Fatalf("normal(10,1) support [%v, %v], want [6, 14]", lo, hi)
	}
	if !strings.HasPrefix(d.String(), "normal(10,1,") {
		t.Fatalf("normal String = %q", d.String())
	}
}

// TestModelSampling: deterministic counter-based sampling, point pins,
// support confinement, and comonotone correlation groups.
func TestModelSampling(t *testing.T) {
	md := mustDist(t)
	nominal := []float64{1, 2, 3, 4, 5}
	m, err := NewModel(nominal)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if !m.Deterministic() {
		t.Fatalf("fresh model not deterministic")
	}
	out := make([]float64, len(nominal))
	m.SampleInto(1, 0, out)
	for i, v := range out {
		if v != nominal[i] {
			t.Fatalf("point sample arc %d = %v, want %v", i, v, nominal[i])
		}
	}
	// Same uniform on arcs 1 and 3, correlated: identical draws every
	// sample. Arc 2 independent on a disjoint support.
	u13 := md(Uniform(10, 20))
	if err := m.SetArc(1, u13); err != nil {
		t.Fatal(err)
	}
	if err := m.SetArc(3, u13); err != nil {
		t.Fatal(err)
	}
	if err := m.SetArc(2, md(Uniform(30, 40))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Correlate(1, 3); err != nil {
		t.Fatal(err)
	}
	if m.Deterministic() || m.RandomArcs() != 3 {
		t.Fatalf("model shape wrong: deterministic=%v random=%d", m.Deterministic(), m.RandomArcs())
	}
	a := make([]float64, len(nominal))
	b := make([]float64, len(nominal))
	seen := map[float64]bool{}
	for idx := uint64(0); idx < 200; idx++ {
		m.SampleInto(7, idx, a)
		m.SampleInto(7, idx, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sample %d not reproducible at arc %d", idx, i)
			}
		}
		if a[0] != 1 || a[4] != 5 {
			t.Fatalf("point arcs drifted: %v", a)
		}
		if a[1] != a[3] {
			t.Fatalf("correlated arcs diverged: %v vs %v", a[1], a[3])
		}
		if a[1] < 10 || a[1] > 20 || a[2] < 30 || a[2] > 40 {
			t.Fatalf("sample outside support: %v", a)
		}
		seen[a[1]] = true
	}
	if len(seen) < 150 {
		t.Fatalf("only %d distinct draws in 200 samples; RNG too coarse", len(seen))
	}
	// Different seeds give different streams.
	m.SampleInto(8, 0, b)
	m.SampleInto(7, 0, a)
	if a[1] == b[1] && a[2] == b[2] {
		t.Fatalf("seeds 7 and 8 produced identical draws")
	}
	// Ungrouping restores independence.
	if err := m.SetGroup(3, -1); err != nil {
		t.Fatal(err)
	}
	diverged := false
	for idx := uint64(0); idx < 50 && !diverged; idx++ {
		m.SampleInto(7, idx, a)
		diverged = a[1] != a[3]
	}
	if !diverged {
		t.Fatalf("ungrouped arcs still comonotone")
	}
}

// TestModelGroupsSurviveEdits: compiling the sampling plan (any
// sampling/inspection call) must not disturb user-assigned group ids,
// so a model edited between Monte-Carlo runs keeps its correlation
// partition intact.
func TestModelGroupsSurviveEdits(t *testing.T) {
	md := mustDist(t)
	m, err := NewModel([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	u := md(Uniform(10, 20))
	if err := m.SetArc(0, u); err != nil {
		t.Fatal(err)
	}
	// Arcs 0 and 1 share user group 3; arc 1 is still a point when the
	// first compile runs.
	if err := m.SetGroup(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.SetGroup(1, 3); err != nil {
		t.Fatal(err)
	}
	m.Deterministic() // compiles
	if m.Group(0) != 3 || m.Group(1) != 3 {
		t.Fatalf("compile rewrote user group ids: %d, %d", m.Group(0), m.Group(1))
	}
	// Making arc 1 random afterwards must land it in the same group.
	if err := m.SetArc(1, u); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	for idx := uint64(0); idx < 20; idx++ {
		m.SampleInto(5, idx, out)
		if out[0] != out[1] {
			t.Fatalf("sample %d: correlated arcs diverged after edit: %v vs %v", idx, out[0], out[1])
		}
	}
}

// TestModelValidation: bad indices and negative supports are rejected.
func TestModelValidation(t *testing.T) {
	if _, err := NewModel([]float64{1, -2}); err == nil {
		t.Fatalf("negative nominal accepted")
	}
	m, err := NewModel([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetArc(5, Dist{}); err == nil {
		t.Fatalf("out-of-range arc accepted")
	}
	if err := m.SetGroup(-1, 0); err == nil {
		t.Fatalf("out-of-range group arc accepted")
	}
}

// TestJitterModels: the helpers produce supports of exactly ±frac and
// reject invalid fractions.
func TestJitterModels(t *testing.T) {
	nominal := []float64{0, 2, 5}
	for _, mk := range []func([]float64, float64) (*Model, error){JitterUniform, JitterNormal} {
		m, err := mk(nominal, 0.1)
		if err != nil {
			t.Fatalf("jitter: %v", err)
		}
		if lo, hi := m.Support(0); lo != 0 || hi != 0 {
			t.Fatalf("zero-delay arc jittered: [%v, %v]", lo, hi)
		}
		for i, d := range []float64{2, 5} {
			lo, hi := m.Support(i + 1)
			if math.Abs(lo-0.9*d) > 1e-12 || math.Abs(hi-1.1*d) > 1e-12 {
				t.Fatalf("arc %d support [%v, %v], want [%v, %v]", i+1, lo, hi, 0.9*d, 1.1*d)
			}
		}
	}
	if _, err := JitterUniform(nominal, -0.5); err == nil {
		t.Fatalf("negative jitter accepted")
	}
	if _, err := JitterUniform(nominal, 1.5); err == nil {
		t.Fatalf("jitter > 1 accepted")
	}
	m, err := JitterUniform(nominal, 0)
	if err != nil || !m.Deterministic() {
		t.Fatalf("zero jitter should stay deterministic (err %v)", err)
	}
}
