// Command tsgserved is the analysis service daemon: it serves the
// JSON-over-HTTP query protocol of internal/serve — cycle-time
// analyses, slack reports, batched what-ifs and Monte-Carlo runs — on
// top of a shared, LRU-bounded engine cache, so many clients asking
// about the same Timed Signal Graph share one compiled engine and its
// warm certificate.
//
// Usage:
//
//	tsgserved [-addr host:port] [-cache-bytes N] [-max-body N]
//	          [-data-dir dir] [-max-concurrent N] [-max-queue N]
//	          [-request-timeout d] [-trace-buffer N] [-metrics-compat]
//	          [-pprof] [-disable-obs] [-version]
//
// The daemon prints its listen URL on startup (with -addr :0 the
// kernel picks a free port — the printed URL is how scripts find it),
// serves until SIGINT/SIGTERM, then drains in-flight requests and
// logs the cache statistics.
//
// -data-dir makes the daemon durable: uploaded graph bodies and
// committed edits are appended to a checksummed write-ahead log in
// that directory (fsync'd before acknowledgement), and a restart on
// the same directory replays the log — recompiling every graph,
// re-applying every edit, restoring the exactly-once edit dedupe
// table — so the node comes back with λ bit-identical to an
// uninterrupted run even after kill -9. Warm-restart work is counted
// separately in /metrics (tsgserve_warm_restart_*).
//
// -max-concurrent bounds in-flight requests per endpoint; excess
// requests wait in a bounded queue (-max-queue, default 4× the
// concurrency) and are shed with 503 + Retry-After when the queue is
// full or their deadline would expire while queued. -request-timeout
// bounds each request end to end; expiry cancels the analysis
// cooperatively and answers 503 + Retry-After.
//
// Endpoints:
//
//	POST /v1/graphs   upload a .tsg body, get its fingerprint
//	POST /v1/analyze  λ + critical cycles
//	POST /v1/slacks   per-arc timing slacks
//	POST /v1/whatif   batched what-if queries
//	POST /v1/mc       Monte-Carlo λ over delay distributions
//	GET  /healthz     liveness + resident graph count
//	GET  /metrics     Prometheus text exposition (HELP/TYPE on every
//	                  family; -metrics-compat appends pre-rename names)
//	GET  /debug/trace    recent request span trees (?graph=, ?format=tree)
//	GET  /debug/cache    engine cache stats + resident entries
//	GET  /debug/hotarcs  per-graph what-if/edit arc touch counts
//	GET  /debug/pprof/*  Go profiler (only with -pprof)
//
// Observability is on by default and costs little (lock-free span ring
// + atomic counters); -disable-obs strips it entirely, turning the
// /metrics and /debug endpoints off. -trace-buffer sizes the span ring
// (spans beyond it overwrite the oldest). -version prints the build
// version and exits.
//
// See the client package for the Go client and EXPERIMENTS.md (SERVE)
// for the load harness driving the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tsg/internal/serve"
	"tsg/internal/store"
)

// version identifies the build in -version output and the
// tsgserve_build_info metric. Overridable at link time:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tsgserved
var version = "dev"

func main() {
	addr := flag.String("addr", "127.0.0.1:7436", "listen address (use :0 for a kernel-assigned port)")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes, "engine cache budget in estimated bytes (negative disables caching)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
	dataDir := flag.String("data-dir", "", "durable state directory (write-ahead log; empty = in-memory only)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max in-flight requests per endpoint (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max queued requests per endpoint beyond -max-concurrent (0 = 4x concurrency)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline; expiry cancels the analysis and answers 503 (0 = none)")
	traceBuffer := flag.Int("trace-buffer", 0, "span ring capacity for /debug/trace (0 = default 8192)")
	metricsCompat := flag.Bool("metrics-compat", false, "also expose pre-rename metric series (tsgserve_queries_total etc.)")
	enablePprof := flag.Bool("pprof", false, "mount Go profiler endpoints under /debug/pprof/")
	disableObs := flag.Bool("disable-obs", false, "strip tracing/metrics entirely (/metrics and /debug answer 404)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("tsgserved %s %s\n", version, runtime.Version())
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tsgserved [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var (
		st  *store.Store
		rec *store.Recovery
	)
	if *dataDir != "" {
		var err error
		st, rec, err = store.Open(*dataDir, store.Options{})
		if err != nil {
			log.Fatalf("tsgserved: opening data dir %s: %v", *dataDir, err)
		}
		defer st.Close()
	}

	s := serve.New(serve.Config{
		CacheBytes:     *cacheBytes,
		MaxBodyBytes:   *maxBody,
		Store:          st,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		RequestTimeout: *requestTimeout,
		TraceBuffer:    *traceBuffer,
		MetricsCompat:  *metricsCompat,
		EnablePprof:    *enablePprof,
		DisableObs:     *disableObs,
		Version:        version,
	})
	if rec != nil {
		if err := s.Recover(rec); err != nil {
			log.Fatalf("tsgserved: recovering from %s: %v", *dataDir, err)
		}
		graphs, edits := s.WarmRestartCounts()
		if graphs > 0 || edits > 0 || rec.TruncatedBytes > 0 {
			log.Printf("tsgserved: warm restart from %s: %d graphs recompiled, %d edits re-applied (%d log records)",
				*dataDir, graphs, edits, rec.Records)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tsgserved: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: s}

	// The printed URL is the contract scripts rely on (the CI smoke
	// step parses it), so it goes to stdout, unbuffered, first.
	fmt.Printf("tsgserved listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("tsgserved: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tsgserved: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsgserved: serve: %v", err)
		}
	}
	cst := s.Cache().Stats()
	log.Printf("tsgserved: served %d hits / %d misses, %d compiles, %d evictions, %d graphs resident (%d bytes)",
		cst.Hits, cst.Misses, cst.Compiles, cst.Evictions, cst.Entries, cst.Bytes)
}
