// Command tsgserved is the analysis service daemon: it serves the
// JSON-over-HTTP query protocol of internal/serve — cycle-time
// analyses, slack reports, batched what-ifs and Monte-Carlo runs — on
// top of a shared, LRU-bounded engine cache, so many clients asking
// about the same Timed Signal Graph share one compiled engine and its
// warm certificate.
//
// Usage:
//
//	tsgserved [-addr host:port] [-cache-bytes N] [-max-body N]
//
// The daemon prints its listen URL on startup (with -addr :0 the
// kernel picks a free port — the printed URL is how scripts find it),
// serves until SIGINT/SIGTERM, then drains in-flight requests and
// logs the cache statistics.
//
// Endpoints:
//
//	POST /v1/graphs   upload a .tsg body, get its fingerprint
//	POST /v1/analyze  λ + critical cycles
//	POST /v1/slacks   per-arc timing slacks
//	POST /v1/whatif   batched what-if queries
//	POST /v1/mc       Monte-Carlo λ over delay distributions
//	GET  /healthz     liveness + resident graph count
//	GET  /metrics     Prometheus counters (queries, hits, compiles)
//
// See the client package for the Go client and EXPERIMENTS.md (SERVE)
// for the load harness driving the daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsg/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7436", "listen address (use :0 for a kernel-assigned port)")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes, "engine cache budget in estimated bytes (negative disables caching)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body size in bytes")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tsgserved [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	s := serve.New(serve.Config{CacheBytes: *cacheBytes, MaxBodyBytes: *maxBody})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tsgserved: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: s}

	// The printed URL is the contract scripts rely on (the CI smoke
	// step parses it), so it goes to stdout, unbuffered, first.
	fmt.Printf("tsgserved listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("tsgserved: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tsgserved: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsgserved: serve: %v", err)
		}
	}
	st := s.Cache().Stats()
	log.Printf("tsgserved: served %d hits / %d misses, %d compiles, %d evictions, %d graphs resident (%d bytes)",
		st.Hits, st.Misses, st.Compiles, st.Evictions, st.Entries, st.Bytes)
}
