// Command tsgsim runs the timed event-driven simulation of a gate-level
// circuit (.ckt netlist) and reports the transition trace, optionally
// exporting a VCD waveform for any standard viewer.
//
// Usage:
//
//	tsgsim [-t maxtime] [-n maxtransitions] [-vcd out.vcd] circuit.ckt
package main

import (
	"flag"
	"fmt"
	"os"

	"tsg"
	"tsg/internal/circuit"
)

func main() {
	maxTime := flag.Float64("t", 0, "stop at this simulation time (0 = unbounded)")
	maxTr := flag.Int("n", 200, "stop after this many transitions")
	vcdOut := flag.String("vcd", "", "write a VCD waveform to this file")
	quiet := flag.Bool("q", false, "suppress the transition listing")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsgsim [flags] circuit.ckt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	n, err := tsg.LoadCircuit(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := tsg.SimulateCircuit(n.Circuit, tsg.CircuitSimOptions{
		Inputs:         n.Inputs,
		MaxTime:        *maxTime,
		MaxTransitions: *maxTr,
	})
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		for _, tr := range res.Transitions {
			dir := "-"
			if tr.Level == tsg.High {
				dir = "+"
			}
			fmt.Printf("%10.4g  %s%s\n", tr.Time, n.Circuit.Signal(tr.Signal).Name, dir)
		}
	}
	for _, h := range res.Hazards {
		fmt.Fprintf(os.Stderr, "tsgsim: HAZARD on gate %s at t=%g\n", h.Gate, h.Time)
	}
	if *vcdOut != "" {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteVCD(f, circuit.VCDOptions{}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tsgsim: wrote %s (%d transitions)\n", *vcdOut, len(res.Transitions))
	}
	if len(res.Hazards) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgsim:", err)
	os.Exit(1)
}
