package main

import (
	"bytes"
	"testing"

	"tsg"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

func TestParseMesh(t *testing.T) {
	w, h, err := parseMesh("64x16")
	if err != nil || w != 64 || h != 16 {
		t.Fatalf("parseMesh(64x16) = %d, %d, %v", w, h, err)
	}
	for _, bad := range []string{"", "bogus", "64", "64x", "x16", "0x5", "4x-2", "8x4x2"} {
		if _, _, err := parseMesh(bad); err == nil {
			t.Errorf("parseMesh(%q) accepted", bad)
		}
	}
}

// TestHugeKindsRoundTrip pins that the graphs the new tsggen kinds emit
// survive the .tsg text format: write, re-read, identical fingerprint.
func TestHugeKindsRoundTrip(t *testing.T) {
	build := map[string]func() (*sg.Graph, error){
		"pipegrid": func() (*sg.Graph, error) {
			return gen.PipeGrid(gen.PipeGridOptions{Sites: 4, Depth: 6, Width: 3, Seed: 9})
		},
		"mesh": func() (*sg.Graph, error) {
			return gen.Mesh(gen.MeshOptions{W: 8, H: 4, Seed: 9})
		},
		"treering": func() (*sg.Graph, error) {
			return gen.TreeOfRings(gen.TreeRingOptions{Sites: 3, Levels: 3, Fanout: 2, Seed: 9})
		},
	}
	for name, fn := range build {
		t.Run(name, func(t *testing.T) {
			g, err := fn()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			var buf bytes.Buffer
			if err := tsg.WriteGraph(&buf, g); err != nil {
				t.Fatalf("WriteGraph: %v", err)
			}
			back, err := tsg.ReadGraph(&buf)
			if err != nil {
				t.Fatalf("ReadGraph: %v", err)
			}
			if sg.Fingerprint(back) != sg.Fingerprint(g) {
				t.Fatal("fingerprint changed across the .tsg round trip")
			}
		})
	}
}
