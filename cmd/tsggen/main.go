// Command tsggen emits the repository's workload families as .tsg or
// .ckt files: the paper's oscillator and Muller ring, stacks, pipelines
// and random live graphs for complexity experiments.
//
// Usage:
//
//	tsggen -kind oscillator            > osc.tsg
//	tsggen -kind oscillator -ckt       > osc.ckt
//	tsggen -kind ring -stages 5        > ring5.tsg
//	tsggen -kind stack -cells 31       > stack.tsg
//	tsggen -kind pipeline -stages 8 -tokens 2 > pipe.tsg
//	tsggen -kind random -events 1000 -border 8 -arcs 2000 -seed 7 > rnd.tsg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tsg"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

func main() {
	kind := flag.String("kind", "oscillator", "oscillator, ring, stack, pipeline, random")
	ckt := flag.Bool("ckt", false, "emit the gate-level .ckt netlist instead of the .tsg graph (oscillator, ring, pipeline)")
	stages := flag.Int("stages", 5, "ring/pipeline stages")
	tokens := flag.Int("tokens", 1, "pipeline data tokens")
	cells := flag.Int("cells", 31, "stack cells")
	events := flag.Int("events", 1000, "random graph events")
	border := flag.Int("border", 8, "random graph border size")
	arcs := flag.Int("arcs", 2000, "random graph total arcs")
	seed := flag.Int64("seed", 1994, "random seed")
	flag.Parse()

	var (
		g   *sg.Graph
		err error
	)
	switch *kind {
	case "oscillator":
		if *ckt {
			c, script := gen.OscillatorCircuit()
			emitCKT(c, script)
			return
		}
		g = gen.Oscillator()
	case "ring":
		if *ckt {
			c, cerr := gen.MullerRingCircuit(gen.RingOptions{Stages: *stages, InitialHigh: []int{*stages}})
			if cerr != nil {
				fatal(cerr)
			}
			emitCKT(c, nil)
			return
		}
		g, err = gen.MullerRing(*stages)
	case "pipeline":
		if *ckt {
			c, cerr := gen.MullerPipelineCircuit(*stages, *tokens, 1, 1)
			if cerr != nil {
				fatal(cerr)
			}
			emitCKT(c, nil)
			return
		}
		g, err = gen.MullerPipeline(*stages, *tokens, 1, 1)
	case "stack":
		g, err = gen.Stack(*cells)
	case "random":
		extra := *arcs - *events
		if extra < 0 {
			fatal(fmt.Errorf("arcs (%d) must be >= events (%d)", *arcs, *events))
		}
		g, err = gen.RandomLive(rand.New(rand.NewSource(*seed)), gen.RandomOptions{
			Events: *events, Border: *border, ExtraArcs: extra,
		})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	if *ckt {
		fatal(fmt.Errorf("-ckt is not available for kind %q", *kind))
	}
	if err := tsg.WriteGraph(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func emitCKT(c *tsg.Circuit, inputs []tsg.InputEvent) {
	if err := netlist.WriteCKT(os.Stdout, &netlist.Netlist{Circuit: c, Inputs: inputs}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsggen:", err)
	os.Exit(1)
}
