// Command tsggen emits the repository's workload families as .tsg or
// .ckt files: the paper's oscillator and Muller ring, stacks, pipelines
// and random live graphs for complexity experiments.
//
// Usage:
//
//	tsggen -kind oscillator            > osc.tsg
//	tsggen -kind oscillator -ckt       > osc.ckt
//	tsggen -kind ring -stages 5        > ring5.tsg
//	tsggen -kind stack -cells 31       > stack.tsg
//	tsggen -kind pipeline -stages 8 -tokens 2 > pipe.tsg
//	tsggen -kind random -events 1000 -border 8 -arcs 2000 -seed 7 > rnd.tsg
//	tsggen -kind pipegrid -sites 16 -pipedepth 64 -pipewidth 4    > grid.tsg
//	tsggen -kind mesh -mesh 64x16                                 > mesh.tsg
//	tsggen -kind treering -sites 6 -levels 8 -fanout 2            > tor.tsg
//
// The pipegrid, mesh and treering kinds are the huge structured
// families of the SCALE experiment: a small ring of token sites with
// token-free fabric between them, so graphs scale to millions of
// events while the border (and the analysis period count) stays tiny.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tsg"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

func main() {
	kind := flag.String("kind", "oscillator", "oscillator, ring, stack, pipeline, random, pipegrid, mesh, treering")
	ckt := flag.Bool("ckt", false, "emit the gate-level .ckt netlist instead of the .tsg graph (oscillator, ring, pipeline)")
	stages := flag.Int("stages", 5, "ring/pipeline stages")
	tokens := flag.Int("tokens", 1, "pipeline data tokens")
	cells := flag.Int("cells", 31, "stack cells")
	events := flag.Int("events", 1000, "random graph events")
	border := flag.Int("border", 8, "random graph border size")
	arcs := flag.Int("arcs", 2000, "random graph total arcs")
	seed := flag.Int64("seed", 1994, "random seed")
	sites := flag.Int("sites", 16, "pipegrid/treering token sites on the ring (the border size)")
	pipeDepth := flag.Int("pipedepth", 64, "pipegrid stages per lane")
	pipeWidth := flag.Int("pipewidth", 4, "pipegrid parallel lanes per segment")
	mesh := flag.String("mesh", "64x16", "mesh dimensions WxH (W >= H >= 2)")
	levels := flag.Int("levels", 6, "treering fan-out tree levels")
	fanout := flag.Int("fanout", 2, "treering tree fanout")
	maxDelay := flag.Int("maxdelay", 8, "pipegrid/mesh/treering max integer delay")
	flag.Parse()

	var (
		g   *sg.Graph
		err error
	)
	switch *kind {
	case "oscillator":
		if *ckt {
			c, script := gen.OscillatorCircuit()
			emitCKT(c, script)
			return
		}
		g = gen.Oscillator()
	case "ring":
		if *ckt {
			c, cerr := gen.MullerRingCircuit(gen.RingOptions{Stages: *stages, InitialHigh: []int{*stages}})
			if cerr != nil {
				fatal(cerr)
			}
			emitCKT(c, nil)
			return
		}
		g, err = gen.MullerRing(*stages)
	case "pipeline":
		if *ckt {
			c, cerr := gen.MullerPipelineCircuit(*stages, *tokens, 1, 1)
			if cerr != nil {
				fatal(cerr)
			}
			emitCKT(c, nil)
			return
		}
		g, err = gen.MullerPipeline(*stages, *tokens, 1, 1)
	case "stack":
		g, err = gen.Stack(*cells)
	case "random":
		extra := *arcs - *events
		if extra < 0 {
			fatal(fmt.Errorf("arcs (%d) must be >= events (%d)", *arcs, *events))
		}
		g, err = gen.RandomLive(rand.New(rand.NewSource(*seed)), gen.RandomOptions{
			Events: *events, Border: *border, ExtraArcs: extra,
		})
	case "pipegrid":
		g, err = gen.PipeGrid(gen.PipeGridOptions{
			Sites: *sites, Depth: *pipeDepth, Width: *pipeWidth,
			MaxDelay: *maxDelay, Seed: uint64(*seed),
		})
	case "mesh":
		w, h, perr := parseMesh(*mesh)
		if perr != nil {
			fatal(perr)
		}
		g, err = gen.Mesh(gen.MeshOptions{W: w, H: h, MaxDelay: *maxDelay, Seed: uint64(*seed)})
	case "treering":
		g, err = gen.TreeOfRings(gen.TreeRingOptions{
			Sites: *sites, Levels: *levels, Fanout: *fanout,
			MaxDelay: *maxDelay, Seed: uint64(*seed),
		})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	if *ckt {
		fatal(fmt.Errorf("-ckt is not available for kind %q", *kind))
	}
	if err := tsg.WriteGraph(os.Stdout, g); err != nil {
		fatal(err)
	}
}

// parseMesh parses the -mesh WxH flag value.
func parseMesh(s string) (w, h int, err error) {
	var rest string
	if n, serr := fmt.Sscanf(s, "%dx%d%s", &w, &h, &rest); serr == nil && n == 3 || w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("-mesh wants WxH (e.g. 64x16), got %q", s)
	}
	return w, h, nil
}

func emitCKT(c *tsg.Circuit, inputs []tsg.InputEvent) {
	if err := netlist.WriteCKT(os.Stdout, &netlist.Netlist{Circuit: c, Inputs: inputs}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsggen:", err)
	os.Exit(1)
}
