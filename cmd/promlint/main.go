// Command promlint checks Prometheus text exposition for the
// conventions the tsg service promises: HELP and TYPE on every family,
// counters suffixed _total, histograms cumulative with a +Inf bucket
// and _count consistency, no duplicate or interleaved series.
//
// Usage:
//
//	promlint [file ...]          # no files = read stdin
//	curl -s host:7436/metrics | promlint
//
// It prints one line per problem and exits 1 when any are found, so CI
// can gate /metrics scrapes on it (the smoke workflow does).
package main

import (
	"fmt"
	"io"
	"os"

	"tsg/internal/obs"
)

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "-h" || os.Args[1] == "-help" || os.Args[1] == "--help") {
		fmt.Fprintln(os.Stderr, "usage: promlint [file ...]  (no files = stdin)")
		os.Exit(2)
	}
	bad := false
	if len(os.Args) == 1 {
		bad = lintOne("<stdin>", os.Stdin)
	} else {
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
				os.Exit(1)
			}
			bad = lintOne(path, f) || bad
			f.Close()
		}
	}
	if bad {
		os.Exit(1)
	}
}

func lintOne(name string, r io.Reader) bool {
	problems, err := obs.Lint(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: reading %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Printf("%s:%d: %s\n", name, p.Line, p.Msg)
	}
	return len(problems) > 0
}
