package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tsg"
	"tsg/internal/serve"
)

// TestServeParity is the CLI/service differential: every testdata
// graph must produce identical reports through the in-process engine
// (localSession) and through a tsgserved handler (remoteSession) — λ,
// critical cycles, slacks, a full-arc sweep, and a seeded Monte-Carlo
// run with a pinned worker count.
func TestServeParity(t *testing.T) {
	srv := httptest.NewServer(serve.New(serve.Config{}))
	defer srv.Close()

	files, err := filepath.Glob("../../testdata/*.tsg")
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata graphs")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			g, model, err := tsg.LoadGraphDist(file)
			if err != nil {
				t.Fatalf("LoadGraphDist: %v", err)
			}
			eng, err := tsg.NewEngine(g)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			local := localSession{ctx: context.Background(), eng: eng}
			remote, err := newRemoteSession(srv.URL, g)
			if err != nil {
				t.Fatalf("newRemoteSession: %v", err)
			}

			// Analysis: λ exact, critical cycles identical.
			lr, err := local.Analyze()
			if err != nil {
				t.Fatalf("local Analyze: %v", err)
			}
			rr, err := remote.Analyze()
			if err != nil {
				t.Fatalf("remote Analyze: %v", err)
			}
			if !lr.CycleTime.Equal(rr.CycleTime) {
				t.Fatalf("λ differs: local %v, served %v", lr.CycleTime, rr.CycleTime)
			}
			if len(lr.Critical) != len(rr.Critical) {
				t.Fatalf("critical cycle count differs: local %d, served %d", len(lr.Critical), len(rr.Critical))
			}
			for i := range lr.Critical {
				lc, rc := lr.Critical[i], rr.Critical[i]
				if lc.Format(g) != rc.Format(g) || lc.Period != rc.Period || lc.Length != rc.Length {
					t.Fatalf("critical cycle %d differs:\nlocal  %s\nserved %s", i, lc.Format(g), rc.Format(g))
				}
			}

			// Slacks: both sides answer from the identically-seeded dual
			// solve on identical engines, so values match exactly.
			ls, err := local.Slacks()
			if err != nil {
				t.Fatalf("local Slacks: %v", err)
			}
			rs, err := remote.Slacks()
			if err != nil {
				t.Fatalf("remote Slacks: %v", err)
			}
			if len(ls) != len(rs) {
				t.Fatalf("slack count differs: local %d, served %d", len(ls), len(rs))
			}
			for i := range ls {
				if ls[i] != rs[i] {
					t.Fatalf("slack %d differs: local %+v, served %+v", i, ls[i], rs[i])
				}
			}

			// Full-arc ×1.5 sweep (what tsgtime -sweep 1.5 issues).
			cands := make([]tsg.WhatIf, g.NumArcs())
			for i := range cands {
				cands[i] = tsg.WhatIf{Arc: i, Delay: g.Arc(i).Delay * 1.5}
			}
			ll, err := local.Sweep(cands)
			if err != nil {
				t.Fatalf("local Sweep: %v", err)
			}
			rl, err := remote.Sweep(cands)
			if err != nil {
				t.Fatalf("remote Sweep: %v", err)
			}
			for i := range ll {
				if !ll[i].Equal(rl[i]) {
					t.Fatalf("sweep arc %d differs: local %v, served %v", i, ll[i], rl[i])
				}
			}

			// Monte-Carlo: same model, seed and worker count on both
			// sides must be bit-identical (the PR 3 determinism
			// guarantee carried over the wire).
			mcModel := model
			if mcModel.Deterministic() {
				mcModel, err = tsg.JitterUniformModel(g, 0.1)
				if err != nil {
					t.Fatalf("JitterUniformModel: %v", err)
				}
			}
			opts := tsg.MCOptions{Samples: 48, Seed: 11, Workers: 1, Quantiles: []float64{0.5, 0.95}, Criticality: true}
			lm, err := local.MC(mcModel, opts)
			if err != nil {
				t.Fatalf("local MC: %v", err)
			}
			rm, err := remote.MC(mcModel, opts)
			if err != nil {
				t.Fatalf("remote MC: %v", err)
			}
			if lm.Mean != rm.Mean || lm.Std != rm.Std || lm.Min != rm.Min || lm.Max != rm.Max || lm.Samples != rm.Samples {
				t.Fatalf("MC summary differs:\nlocal  %+v\nserved %+v", lm, rm)
			}
			for i := range lm.Quantiles {
				if lm.Quantiles[i] != rm.Quantiles[i] {
					t.Fatalf("MC quantile %d differs: local %+v, served %+v", i, lm.Quantiles[i], rm.Quantiles[i])
				}
			}
			if len(lm.Criticality) != len(rm.Criticality) {
				t.Fatalf("criticality length differs")
			}
			for i := range lm.Criticality {
				if lm.Criticality[i] != rm.Criticality[i] {
					t.Fatalf("criticality arc %d differs: local %v, served %v", i, lm.Criticality[i], rm.Criticality[i])
				}
			}

			// Edit→analyze loop (what tsgtime -edit issues): identical
			// commits on both sides must report identical λ after every
			// step, and the post-edit slack reports must still match —
			// both sides answer the re-analyses incrementally.
			for step := 0; step < 3; step++ {
				arc := (step * 5) % g.NumArcs()
				d := g.Arc(arc).Delay + float64(step) + 0.5
				llam, err := local.Edit(arc, d)
				if err != nil {
					t.Fatalf("local Edit: %v", err)
				}
				rlam, err := remote.Edit(arc, d)
				if err != nil {
					t.Fatalf("remote Edit: %v", err)
				}
				if !llam.Equal(rlam) {
					t.Fatalf("edit step %d: λ differs: local %v, served %v", step, llam, rlam)
				}
			}
			les, err := local.Slacks()
			if err != nil {
				t.Fatalf("local post-edit Slacks: %v", err)
			}
			res, err := remote.Slacks()
			if err != nil {
				t.Fatalf("remote post-edit Slacks: %v", err)
			}
			for i := range les {
				if les[i] != res[i] {
					t.Fatalf("post-edit slack %d differs: local %+v, served %+v", i, les[i], res[i])
				}
			}
		})
	}
}
