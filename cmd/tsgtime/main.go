// Command tsgtime computes the cycle time and critical cycle of a Timed
// Signal Graph given as a .tsg file.
//
// Usage:
//
//	tsgtime [-algo nielsen|karp|howard|lawler|oracle] [-periods N]
//	        [-series] [-slacks] [-sweep factor] [-dot out.dot] graph.tsg
//
// The default algorithm is the paper's O(b²m) timing simulation
// ("nielsen"); the alternatives are the classical maximum-cycle-ratio
// baselines and the exponential simple-cycle enumeration oracle.
//
// The nielsen path runs on a tsg.Engine session, so the secondary
// reports reuse the one compiled schedule: -slacks prints the per-arc
// timing slacks certified by the engine's simulation times, and
// -sweep f answers "what is λ if this arc's delay were scaled by f"
// for every arc in one sensitivity sweep, reporting the arcs that move
// the cycle time together with the fast-path statistics.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"tsg"
	"tsg/internal/cycles"
	"tsg/internal/mcr"
	"tsg/internal/textio"
)

func main() {
	algo := flag.String("algo", "nielsen", "algorithm: nielsen, karp, howard, lawler, oracle")
	periods := flag.Int("periods", 0, "override simulated periods (nielsen only; 0 = border-set size)")
	series := flag.Bool("series", false, "print the per-border-event distance series")
	slacks := flag.Bool("slacks", false, "print per-arc timing slacks (nielsen only)")
	sweep := flag.Float64("sweep", 0, "sweep every arc at delay×factor and report λ changes (nielsen only; 0 = off)")
	dotOut := flag.String("dot", "", "write the graph in DOT format to this file")
	eps := flag.Float64("eps", 1e-9, "convergence width (lawler only)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsgtime [flags] graph.tsg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *sweep < 0 || math.IsNaN(*sweep) {
		fmt.Fprintf(os.Stderr, "tsgtime: -sweep factor must be positive, got %g\n", *sweep)
		os.Exit(2)
	}
	g, err := tsg.LoadGraph(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Println(g)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}

	switch *algo {
	case "nielsen":
		eng, err := tsg.NewEngineOpts(g, tsg.AnalysisOptions{Periods: *periods})
		if err != nil {
			fatal(err)
		}
		res, err := eng.Analyze()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v\n", res.CycleTime)
		for _, c := range res.Critical {
			fmt.Printf("critical cycle (length %g, ε=%d):\n  %s\n", c.Length, c.Period, c.Format(g))
		}
		if *series {
			tab := textio.New("border-event distance series", "event", "δ series", "on critical cycle")
			for _, s := range res.Series {
				tab.AddRow(g.Event(s.Event).Name, fmt.Sprint(s.Distances), s.OnCritical)
			}
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *slacks {
			sl, err := eng.Slacks()
			if err != nil {
				fatal(err)
			}
			tab := textio.New("per-arc timing slacks", "arc", "from", "to", "delay", "slack", "tight")
			for _, s := range sl {
				a := g.Arc(s.Arc)
				tab.AddRow(s.Arc, g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, s.Slack, s.Tight)
			}
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *sweep > 0 {
			if err := runSweep(eng, g, *sweep); err != nil {
				fatal(err)
			}
		}
	case "karp":
		r, err := mcr.Karp(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Karp, token-graph reduction)\n", r)
	case "howard":
		r, err := mcr.Howard(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Howard policy iteration)\n", r)
	case "lawler":
		v, err := mcr.Lawler(g, *eps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %.9g ± %g (Lawler binary search / Burns LP)\n", v, *eps)
	case "oracle":
		r, crit, err := cycles.MaxRatio(g, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (simple-cycle enumeration)\n", r)
		fmt.Printf("critical cycle: %v (length %g, ε=%d)\n",
			g.EventNames(crit.Events), crit.Length, crit.Tokens)
	default:
		fmt.Fprintf(os.Stderr, "tsgtime: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}

// runSweep asks the engine "what is λ if this arc's delay were scaled
// by factor" for every arc in one sweep, then reports the arcs that
// move the cycle time, most critical first.
func runSweep(eng *tsg.Engine, g *tsg.Graph, factor float64) error {
	base, err := eng.Analyze()
	if err != nil {
		return err
	}
	cands := make([]tsg.WhatIf, g.NumArcs())
	for i := range cands {
		cands[i] = tsg.WhatIf{Arc: i, Delay: g.Arc(i).Delay * factor}
	}
	lams, err := eng.SensitivitySweep(cands)
	if err != nil {
		return err
	}
	type hit struct {
		arc int
		lam tsg.Ratio
	}
	var moved []hit
	for i, lam := range lams {
		if !lam.Equal(base.CycleTime) {
			moved = append(moved, hit{arc: i, lam: lam})
		}
	}
	// Most interesting first: for a slow-down sweep (factor > 1) the
	// largest resulting λ, for a speed-up sweep the largest reduction.
	sort.Slice(moved, func(i, j int) bool {
		if !moved[i].lam.Equal(moved[j].lam) {
			if factor < 1 {
				return moved[i].lam.Less(moved[j].lam)
			}
			return moved[j].lam.Less(moved[i].lam)
		}
		return moved[i].arc < moved[j].arc
	})
	const maxRows = 25
	tab := textio.New(
		fmt.Sprintf("sensitivity sweep ×%g: %d of %d arcs move λ (showing up to %d)",
			factor, len(moved), len(cands), maxRows),
		"arc", "from", "to", "delay", "×factor", "λ")
	for i, h := range moved {
		if i == maxRows {
			break
		}
		a := g.Arc(h.arc)
		tab.AddRow(h.arc, g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Delay*factor, h.lam.String())
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("engine: %d full analyses; %d answers from the slack certificate, %d from the what-if rows\n",
		st.Analyses, st.FastPathHits, st.TableAnswers)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgtime:", err)
	os.Exit(1)
}
