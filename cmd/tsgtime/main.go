// Command tsgtime computes the cycle time and critical cycle of a Timed
// Signal Graph given as a .tsg file.
//
// Usage:
//
//	tsgtime [-algo nielsen|karp|howard|lawler|oracle] [-periods N]
//	        [-series] [-dot out.dot] graph.tsg
//
// The default algorithm is the paper's O(b²m) timing simulation
// ("nielsen"); the alternatives are the classical maximum-cycle-ratio
// baselines and the exponential simple-cycle enumeration oracle.
package main

import (
	"flag"
	"fmt"
	"os"

	"tsg"
	"tsg/internal/cycles"
	"tsg/internal/mcr"
	"tsg/internal/textio"
)

func main() {
	algo := flag.String("algo", "nielsen", "algorithm: nielsen, karp, howard, lawler, oracle")
	periods := flag.Int("periods", 0, "override simulated periods (nielsen only; 0 = border-set size)")
	series := flag.Bool("series", false, "print the per-border-event distance series")
	dotOut := flag.String("dot", "", "write the graph in DOT format to this file")
	eps := flag.Float64("eps", 1e-9, "convergence width (lawler only)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsgtime [flags] graph.tsg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := tsg.LoadGraph(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Println(g)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}

	switch *algo {
	case "nielsen":
		res, err := tsg.AnalyzeOpts(g, tsg.AnalysisOptions{Periods: *periods})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v\n", res.CycleTime)
		for _, c := range res.Critical {
			fmt.Printf("critical cycle (length %g, ε=%d):\n  %s\n", c.Length, c.Period, c.Format(g))
		}
		if *series {
			tab := textio.New("border-event distance series", "event", "δ series", "on critical cycle")
			for _, s := range res.Series {
				tab.AddRow(g.Event(s.Event).Name, fmt.Sprint(s.Distances), s.OnCritical)
			}
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	case "karp":
		r, err := mcr.Karp(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Karp, token-graph reduction)\n", r)
	case "howard":
		r, err := mcr.Howard(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Howard policy iteration)\n", r)
	case "lawler":
		v, err := mcr.Lawler(g, *eps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %.9g ± %g (Lawler binary search / Burns LP)\n", v, *eps)
	case "oracle":
		r, crit, err := cycles.MaxRatio(g, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (simple-cycle enumeration)\n", r)
		fmt.Printf("critical cycle: %v (length %g, ε=%d)\n",
			g.EventNames(crit.Events), crit.Length, crit.Tokens)
	default:
		fmt.Fprintf(os.Stderr, "tsgtime: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgtime:", err)
	os.Exit(1)
}
