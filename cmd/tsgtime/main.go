// Command tsgtime computes the cycle time and critical cycle of a Timed
// Signal Graph given as a .tsg file.
//
// Usage:
//
//	tsgtime [-algo nielsen|karp|howard|lawler|oracle] [-periods N]
//	        [-series] [-slacks] [-sweep factor] [-dot out.dot]
//	        [-edit arc=delay,...]
//	        [-mc N] [-quantiles p,...] [-criticality] [-mctol tol]
//	        [-mcseed s] [-jitter f] [-trace]
//	        [-serve http://host:port] graph.tsg
//
// The default algorithm is the paper's O(b²m) timing simulation
// ("nielsen"); the alternatives are the classical maximum-cycle-ratio
// baselines and the exponential simple-cycle enumeration oracle.
//
// The nielsen path runs on a tsg.Engine session, so the secondary
// reports reuse the one compiled schedule: -slacks prints the per-arc
// timing slacks certified by the engine's simulation times, and
// -sweep f answers "what is λ if this arc's delay were scaled by f"
// for every arc in one sensitivity sweep, reporting the arcs that move
// the cycle time together with the fast-path statistics.
//
// -edit "arc=delay,arc=delay,…" replays a batch of committed delay
// edits against the session, REPL-style: each edit is applied in order
// and λ is re-reported after it, exercising the paper's edit→analyze
// loop. The engine answers each re-analysis incrementally — only the
// forward cone of the edited arc is re-propagated through the retained
// simulation traces (the statistics line shows full vs incremental
// analyses). The later -slacks and -sweep reports see the edited
// baseline; -mc does NOT — the Monte-Carlo samples are drawn from the
// file's delay-distribution model, which is independent of committed
// point edits (remotely it even analyses under its own fingerprint).
// With -serve the edits commit to the shared server session for this
// graph's fingerprint.
//
// -mc N runs the statistical analysis: N Monte-Carlo samples of the
// file's delay distributions (the ~uniform(lo,hi)-style arc
// annotations; with none, -jitter f applies uniform ±f jitter to every
// delay), reporting λ mean/std/min/max and the -quantiles estimates,
// with an early stop when -mctol is positive. -criticality additionally
// ranks arcs by the fraction of samples in which they lie on a critical
// cycle — the bottleneck list under uncertainty.
//
// -trace records every analysis of the run in an in-process span ring
// and prints the resulting span tree — compile, pass 1 (window vs
// slab), lazy pass 2, dirty-cone patches, slack certificates, answer
// tiers — after the reports, so a slow run explains itself. It needs
// the in-process engine and is rejected with -serve (the daemon has
// /debug/trace for the same view).
//
// -serve http://host:port routes the nielsen path through a tsgserved
// daemon instead of analysing in process: the graph is uploaded once
// and every report — analysis, -slacks, -sweep, -mc — is answered by
// the server's shared engine cache. Output is identical to the
// in-process form (the parity test pins it); -series and -periods need
// session-local state and are rejected with -serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"tsg"
	"tsg/client"
	"tsg/internal/cycles"
	"tsg/internal/mcr"
	"tsg/internal/obs"
	"tsg/internal/textio"
)

func main() {
	algo := flag.String("algo", "nielsen", "algorithm: nielsen, karp, howard, lawler, oracle")
	periods := flag.Int("periods", 0, "override simulated periods (nielsen only; 0 = border-set size)")
	series := flag.Bool("series", false, "print the per-border-event distance series")
	slacks := flag.Bool("slacks", false, "print per-arc timing slacks (nielsen only)")
	sweep := flag.Float64("sweep", 0, "sweep every arc at delay×factor and report λ changes (nielsen only; 0 = off)")
	edit := flag.String("edit", "", "comma-separated arc=delay commits applied in order, λ re-reported after each (nielsen only)")
	dotOut := flag.String("dot", "", "write the graph in DOT format to this file")
	eps := flag.Float64("eps", 1e-9, "convergence width (lawler only)")
	mcN := flag.Int("mc", 0, "Monte-Carlo samples over the delay distributions (nielsen only; 0 = off)")
	mcSeed := flag.Uint64("mcseed", 1, "Monte-Carlo sample seed")
	mcTol := flag.Float64("mctol", 0, "early-stop tolerance on the λ quantile confidence intervals (0 = run all samples)")
	quantiles := flag.String("quantiles", "0.5,0.95", "comma-separated λ quantiles to estimate")
	criticality := flag.Bool("criticality", false, "rank arcs by Monte-Carlo criticality (fraction of samples on a critical cycle)")
	jitter := flag.Float64("jitter", 0, "apply uniform ±f delay jitter when the file has no distribution annotations")
	serveURL := flag.String("serve", "", "route the nielsen path through a tsgserved daemon at this base URL")
	trace := flag.Bool("trace", false, "print the span tree of every analysis after the reports (nielsen only, in-process)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsgtime [flags] graph.tsg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *sweep < 0 || math.IsNaN(*sweep) {
		fmt.Fprintf(os.Stderr, "tsgtime: -sweep factor must be positive, got %g\n", *sweep)
		os.Exit(2)
	}
	if *edit != "" && *algo != "nielsen" {
		fmt.Fprintf(os.Stderr, "tsgtime: -edit supports only -algo nielsen, got %q\n", *algo)
		os.Exit(2)
	}
	if *serveURL != "" {
		switch {
		case *algo != "nielsen":
			fmt.Fprintf(os.Stderr, "tsgtime: -serve supports only -algo nielsen, got %q\n", *algo)
			os.Exit(2)
		case *series:
			fmt.Fprintln(os.Stderr, "tsgtime: -series is not available with -serve (the protocol carries no distance series)")
			os.Exit(2)
		case *periods != 0:
			fmt.Fprintln(os.Stderr, "tsgtime: -periods is not available with -serve (the server owns the session options)")
			os.Exit(2)
		case *trace:
			fmt.Fprintln(os.Stderr, "tsgtime: -trace needs the in-process engine; use the daemon's /debug/trace with -serve")
			os.Exit(2)
		}
	}
	g, model, err := tsg.LoadGraphDist(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Println(g)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}

	switch *algo {
	case "nielsen":
		var sess session
		var tracer *obs.Tracer
		if *serveURL != "" {
			rs, err := newRemoteSession(*serveURL, g)
			if err != nil {
				fatal(err)
			}
			sess = rs
		} else {
			ctx := context.Background()
			if *trace {
				tracer = obs.NewTracer(obs.DefaultRingSize)
				ctx = obs.WithTracer(ctx, tracer)
			}
			eng, err := tsg.NewEngineOptsCtx(ctx, g, tsg.AnalysisOptions{Periods: *periods})
			if err != nil {
				fatal(err)
			}
			sess = localSession{ctx: ctx, eng: eng}
		}
		res, err := sess.Analyze()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v\n", res.CycleTime)
		for _, c := range res.Critical {
			fmt.Printf("critical cycle (length %g, ε=%d):\n  %s\n", c.Length, c.Period, c.Format(g))
		}
		if *series {
			tab := textio.New("border-event distance series", "event", "δ series", "on critical cycle")
			for _, s := range res.Series {
				tab.AddRow(g.Event(s.Event).Name, fmt.Sprint(s.Distances), s.OnCritical)
			}
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *edit != "" {
			if err := runEdits(sess, g, *edit); err != nil {
				fatal(err)
			}
		}
		if *slacks {
			sl, err := sess.Slacks()
			if err != nil {
				fatal(err)
			}
			tab := textio.New("per-arc timing slacks", "arc", "from", "to", "delay", "slack", "tight")
			for _, s := range sl {
				a := g.Arc(s.Arc)
				tab.AddRow(s.Arc, g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, s.Slack, s.Tight)
			}
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *sweep > 0 {
			if err := runSweep(sess, g, *sweep); err != nil {
				fatal(err)
			}
		}
		if *mcN > 0 {
			if model.Deterministic() && *jitter > 0 {
				model, err = tsg.JitterUniformModel(g, *jitter)
				if err != nil {
					fatal(err)
				}
			}
			if err := runMC(sess, g, model, *mcN, *mcSeed, *mcTol, *quantiles, *criticality); err != nil {
				fatal(err)
			}
		}
		if tracer != nil {
			fmt.Printf("trace (%d spans recorded):\n", tracer.Recorded())
			obs.WriteTree(os.Stdout, tracer.Snapshot())
		}
	case "karp":
		r, err := mcr.Karp(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Karp, token-graph reduction)\n", r)
	case "howard":
		r, err := mcr.Howard(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (Howard policy iteration)\n", r)
	case "lawler":
		v, err := mcr.Lawler(g, *eps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %.9g ± %g (Lawler binary search / Burns LP)\n", v, *eps)
	case "oracle":
		r, crit, err := cycles.MaxRatio(g, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle time λ = %v (simple-cycle enumeration)\n", r)
		fmt.Printf("critical cycle: %v (length %g, ε=%d)\n",
			g.EventNames(crit.Events), crit.Length, crit.Tokens)
	default:
		fmt.Fprintf(os.Stderr, "tsgtime: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}

// runEdits parses and replays a -edit batch: each arc=delay commit is
// applied to the session in order and λ is re-reported after it, so
// the printed column is the trajectory of the edit→analyze loop. The
// statistics line then shows how many of those re-analyses were
// answered incrementally.
func runEdits(sess session, g *tsg.Graph, spec string) error {
	type delayEdit struct {
		arc   int
		delay float64
	}
	var edits []delayEdit
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		eq := strings.IndexByte(tok, '=')
		if eq < 0 {
			return fmt.Errorf("bad -edit entry %q: want arc=delay", tok)
		}
		arc, err := strconv.Atoi(strings.TrimSpace(tok[:eq]))
		if err != nil {
			return fmt.Errorf("bad -edit arc in %q: %v", tok, err)
		}
		if arc < 0 || arc >= g.NumArcs() {
			return fmt.Errorf("-edit entry %q: arc index out of range [0,%d)", tok, g.NumArcs())
		}
		d, err := strconv.ParseFloat(strings.TrimSpace(tok[eq+1:]), 64)
		if err != nil {
			return fmt.Errorf("bad -edit delay in %q: %v", tok, err)
		}
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("-edit entry %q: invalid delay %g", tok, d)
		}
		edits = append(edits, delayEdit{arc: arc, delay: d})
	}
	if len(edits) == 0 {
		return fmt.Errorf("-edit %q contains no edits", spec)
	}
	tab := textio.New(fmt.Sprintf("edit→analyze loop: %d committed edits", len(edits)),
		"#", "arc", "from", "to", "delay", "λ after commit")
	for i, ed := range edits {
		lam, err := sess.Edit(ed.arc, ed.delay)
		if err != nil {
			return fmt.Errorf("edit %d (arc %d = %g): %w", i, ed.arc, ed.delay, err)
		}
		a := g.Arc(ed.arc)
		tab.AddRow(i, ed.arc, g.Event(a.From).Name, g.Event(a.To).Name, ed.delay, lam.String())
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(sess.StatsLine())
	return nil
}

// runSweep asks the engine "what is λ if this arc's delay were scaled
// by factor" for every arc in one sweep, then reports the arcs that
// move the cycle time, most critical first.
func runSweep(sess session, g *tsg.Graph, factor float64) error {
	base, err := sess.Analyze()
	if err != nil {
		return err
	}
	cands := make([]tsg.WhatIf, g.NumArcs())
	for i := range cands {
		cands[i] = tsg.WhatIf{Arc: i, Delay: g.Arc(i).Delay * factor}
	}
	lams, err := sess.Sweep(cands)
	if err != nil {
		return err
	}
	type hit struct {
		arc int
		lam tsg.Ratio
	}
	var moved []hit
	for i, lam := range lams {
		if !lam.Equal(base.CycleTime) {
			moved = append(moved, hit{arc: i, lam: lam})
		}
	}
	// Most interesting first: for a slow-down sweep (factor > 1) the
	// largest resulting λ, for a speed-up sweep the largest reduction.
	sort.Slice(moved, func(i, j int) bool {
		if !moved[i].lam.Equal(moved[j].lam) {
			if factor < 1 {
				return moved[i].lam.Less(moved[j].lam)
			}
			return moved[j].lam.Less(moved[i].lam)
		}
		return moved[i].arc < moved[j].arc
	})
	const maxRows = 25
	tab := textio.New(
		fmt.Sprintf("sensitivity sweep ×%g: %d of %d arcs move λ (showing up to %d)",
			factor, len(moved), len(cands), maxRows),
		"arc", "from", "to", "delay", "×factor", "λ")
	for i, h := range moved {
		if i == maxRows {
			break
		}
		a := g.Arc(h.arc)
		tab.AddRow(h.arc, g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Delay*factor, h.lam.String())
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(sess.StatsLine())
	return nil
}

// runMC runs the Monte-Carlo analysis on the session engine and prints
// the λ distribution summary, the quantile estimates, and (optionally)
// the criticality-ranked bottleneck arcs.
func runMC(sess session, g *tsg.Graph, model *tsg.DelayModel, samples int, seed uint64, tol float64, quantiles string, criticality bool) error {
	var qs []float64
	for _, tok := range strings.Split(quantiles, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return fmt.Errorf("bad quantile %q: %v", tok, err)
		}
		qs = append(qs, p)
	}
	if model.Deterministic() {
		fmt.Println("note: all delays are points (no ~ annotations, no -jitter); the Monte-Carlo λ is degenerate")
	}
	res, err := sess.MC(model, tsg.MCOptions{
		Samples: samples, Seed: seed, Quantiles: qs, Tol: tol, Criticality: criticality,
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Monte-Carlo λ over %d samples (%d of %d arcs uncertain",
		res.Samples, model.RandomArcs(), g.NumArcs())
	if res.Converged {
		title += ", converged early"
	}
	title += ")"
	tab := textio.New(title, "statistic", "value")
	tab.AddRow("mean", fmt.Sprintf("%.6g ± %.3g", res.Mean, res.MeanCIHalf))
	tab.AddRow("std", fmt.Sprintf("%.6g", res.Std))
	tab.AddRow("min", fmt.Sprintf("%.6g", res.Min))
	tab.AddRow("max", fmt.Sprintf("%.6g", res.Max))
	for _, q := range res.Quantiles {
		tab.AddRow(fmt.Sprintf("q%.3g", q.P), fmt.Sprintf("%.6g ± %.3g", q.Value, q.CIHalf))
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	if criticality {
		type hit struct {
			arc  int
			crit float64
		}
		var hits []hit
		for i, c := range res.Criticality {
			if c > 0 {
				hits = append(hits, hit{i, c})
			}
		}
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].crit != hits[j].crit {
				return hits[i].crit > hits[j].crit
			}
			return hits[i].arc < hits[j].arc
		})
		const maxRows = 25
		ctab := textio.New(
			fmt.Sprintf("arc criticality: %d arcs on a critical cycle in some sample (showing up to %d)",
				len(hits), maxRows),
			"arc", "from", "to", "delay", "criticality")
		for i, h := range hits {
			if i == maxRows {
				break
			}
			a := g.Arc(h.arc)
			delay := model.Dist(h.arc).String()
			if model.Dist(h.arc).IsPoint() {
				delay = fmt.Sprintf("%g", a.Delay)
			}
			ctab.AddRow(h.arc, g.Event(a.From).Name, g.Event(a.To).Name, delay, fmt.Sprintf("%.3f", h.crit))
		}
		if err := ctab.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	var unreach *client.UnreachableError
	if errors.As(err, &unreach) {
		fmt.Fprintf(os.Stderr, "tsgtime: server unreachable after %d attempts: %s — is tsgserved running at that address? (%v)\n",
			unreach.Attempts, unreach.URL, unreach.Err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tsgtime:", err)
	os.Exit(1)
}
