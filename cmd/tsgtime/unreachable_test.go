package main

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"tsg/client"
	"tsg/internal/gen"
)

// TestServeUnreachable pins the -serve failure contract: a dead server
// surfaces as *client.UnreachableError through the session layer's
// wrapping, which fatal() turns into the non-zero "server unreachable
// after N attempts — is tsgserved running" exit.
func TestServeUnreachable(t *testing.T) {
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close() // connection refused from here on

	g := gen.Oscillator()
	start := time.Now()
	_, err := newRemoteSession(url, g)
	if err == nil {
		t.Fatal("newRemoteSession succeeded against a closed server")
	}
	var unreach *client.UnreachableError
	if !errors.As(err, &unreach) {
		t.Fatalf("error %v (%T) does not unwrap to *client.UnreachableError", err, err)
	}
	if unreach.Attempts < 2 {
		t.Fatalf("gave up after %d attempts; retries did not run", unreach.Attempts)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("unreachable detection took %v", d)
	}
}
