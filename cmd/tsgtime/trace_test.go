package main

import (
	"context"
	"strings"
	"testing"

	"tsg"
	"tsg/internal/gen"
	"tsg/internal/obs"
)

// TestLocalSessionTracing pins the -trace wiring: a localSession built
// on a traced context must record the compile and an answer span with
// kernel phases underneath, and WriteTree must render them.
func TestLocalSessionTracing(t *testing.T) {
	g := gen.Oscillator()
	tr := obs.NewTracer(256)
	ctx := obs.WithTracer(context.Background(), tr)
	eng, err := tsg.NewEngineOptsCtx(ctx, g, tsg.AnalysisOptions{})
	if err != nil {
		t.Fatalf("NewEngineOptsCtx: %v", err)
	}
	sess := localSession{ctx: ctx, eng: eng}
	if _, err := sess.Analyze(); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, err := sess.Edit(0, g.Arc(0).Delay+1); err != nil {
		t.Fatalf("Edit: %v", err)
	}

	var sb strings.Builder
	obs.WriteTree(&sb, tr.Snapshot())
	out := sb.String()
	for _, want := range []string{"engine.compile", "engine.answer", "engine.pass1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace tree missing %s:\n%s", want, out)
		}
	}
}
