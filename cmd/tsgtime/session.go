package main

import (
	"context"
	"fmt"

	"tsg"
	"tsg/client"
)

// session abstracts where the nielsen-path analyses run: in process on
// a tsg.Engine, or on a tsgserved daemon through the service client
// (-serve). Both forms answer every query from one compiled session
// per graph, so the CLI output is identical either way — the parity
// test in main_test.go pins that on the testdata graphs.
type session interface {
	// Analyze returns the full analysis; the remote form carries no
	// distance series (reject -series with -serve).
	Analyze() (*tsg.Result, error)
	Slacks() ([]tsg.ArcSlack, error)
	Sweep(cands []tsg.WhatIf) ([]tsg.Ratio, error)
	// Edit commits one delay edit to the session baseline and returns
	// λ after it — every later report sees the edit. The in-process
	// form (and the server behind the remote form) answers the
	// post-edit analysis incrementally by dirty-cone patching.
	Edit(arc int, delay float64) (tsg.Ratio, error)
	MC(model *tsg.DelayModel, opts tsg.MCOptions) (*tsg.MCResult, error)
	// StatsLine renders the statistics line printed after a sweep; the
	// remote form reports the server engine's cumulative counters.
	StatsLine() string
}

// localSession runs on an in-process engine. Its context carries the
// -trace tracer (context.Background() otherwise), so every query runs
// through the engine's Ctx entry points and contributes to the span
// tree the flag prints.
type localSession struct {
	ctx context.Context
	eng *tsg.Engine
}

func (s localSession) Analyze() (*tsg.Result, error)   { return s.eng.AnalyzeCtx(s.ctx) }
func (s localSession) Slacks() ([]tsg.ArcSlack, error) { return s.eng.SlacksCtx(s.ctx) }
func (s localSession) Sweep(c []tsg.WhatIf) ([]tsg.Ratio, error) {
	return s.eng.SensitivitySweepCtx(s.ctx, c)
}
func (s localSession) Edit(arc int, delay float64) (tsg.Ratio, error) {
	if err := s.eng.SetDelay(arc, delay); err != nil {
		return tsg.Ratio{}, err
	}
	return s.eng.CycleTimeCtx(s.ctx)
}
func (s localSession) MC(m *tsg.DelayModel, o tsg.MCOptions) (*tsg.MCResult, error) {
	return s.eng.AnalyzeMCCtx(s.ctx, m, o)
}
func (s localSession) StatsLine() string {
	st := s.eng.Stats()
	return fmt.Sprintf("engine: %d full analyses, %d incremental; %d answers from the slack certificate, %d from the what-if rows",
		st.Analyses, st.IncrementalAnalyses, st.FastPathHits, st.TableAnswers)
}

// remoteSession routes queries through a tsgserved daemon: the graph
// is uploaded once, everything after references its fingerprint and
// shares the server's cached engine with every other client.
type remoteSession struct {
	ctx   context.Context
	cl    *client.Client
	g     *tsg.Graph
	arcs  *client.ArcMap // local declaration order <-> canonical wire indices
	ref   client.GraphRef
	stats client.EngineStats // last reported server counters, for StatsLine
}

func newRemoteSession(baseURL string, g *tsg.Graph) (*remoteSession, error) {
	s := &remoteSession{ctx: context.Background(), cl: client.New(baseURL), g: g, arcs: client.NewArcMap(g)}
	up, err := s.cl.Upload(s.ctx, g)
	if err != nil {
		return nil, fmt.Errorf("uploading graph to %s: %w", baseURL, err)
	}
	s.ref = client.ByFingerprint(up.Fingerprint)
	return s, nil
}

func (s *remoteSession) lambda(l client.Lambda) tsg.Ratio {
	return tsg.Ratio{Num: l.Num, Den: l.Den}
}

func (s *remoteSession) Analyze() (*tsg.Result, error) {
	res, err := s.cl.Analyze(s.ctx, s.ref)
	if err != nil {
		return nil, err
	}
	out := &tsg.Result{CycleTime: s.lambda(res.Lambda)}
	for _, c := range res.Critical {
		arcs := make([]int, len(c.Arcs))
		for i, a := range c.Arcs {
			arcs[i] = s.arcs.FromWire(a)
		}
		cyc := tsg.CriticalCycle{
			Arcs:   arcs,
			Length: c.Length,
			Period: c.Period,
		}
		for _, name := range c.Events {
			id, ok := s.g.EventByName(name)
			if !ok {
				return nil, fmt.Errorf("server cycle references unknown event %q", name)
			}
			cyc.Events = append(cyc.Events, id)
		}
		out.Critical = append(out.Critical, cyc)
	}
	return out, nil
}

func (s *remoteSession) Slacks() ([]tsg.ArcSlack, error) {
	res, err := s.cl.Slacks(s.ctx, s.ref)
	if err != nil {
		return nil, err
	}
	out := make([]tsg.ArcSlack, len(res.Slacks))
	for i, sl := range res.Slacks {
		out[i] = tsg.ArcSlack{Arc: s.arcs.FromWire(sl.Arc), Slack: sl.Slack, Tight: sl.Tight}
	}
	return out, nil
}

func (s *remoteSession) Sweep(cands []tsg.WhatIf) ([]tsg.Ratio, error) {
	queries := make([]client.WhatIfQuery, len(cands))
	for i, c := range cands {
		queries[i] = client.WhatIfQuery{Arc: s.arcs.ToWire(c.Arc), Delay: c.Delay}
	}
	res, err := s.cl.WhatIf(s.ctx, s.ref, queries)
	if err != nil {
		return nil, err
	}
	s.stats = res.Stats
	out := make([]tsg.Ratio, len(res.Lambdas))
	for i, l := range res.Lambdas {
		out[i] = s.lambda(l)
	}
	return out, nil
}

func (s *remoteSession) Edit(arc int, delay float64) (tsg.Ratio, error) {
	res, err := s.cl.Edit(s.ctx, s.ref, []client.DelayEdit{{Arc: s.arcs.ToWire(arc), Delay: delay}})
	if err != nil {
		return tsg.Ratio{}, err
	}
	s.stats = res.Stats
	return s.lambda(res.Lambda), nil
}

func (s *remoteSession) MC(model *tsg.DelayModel, opts tsg.MCOptions) (*tsg.MCResult, error) {
	// The model may differ from the uploaded annotations (the -jitter
	// fallback), so Monte-Carlo inlines graph + model; the server
	// fingerprints the pair and caches its engine like any upload.
	ref, err := client.ByGraphDist(s.g, model)
	if err != nil {
		return nil, err
	}
	res, err := s.cl.MC(s.ctx, ref, client.MCRequest{
		Samples:     opts.Samples,
		MinSamples:  opts.MinSamples,
		Seed:        opts.Seed,
		Quantiles:   opts.Quantiles,
		Tol:         opts.Tol,
		Confidence:  opts.Confidence,
		Criticality: opts.Criticality,
		Workers:     opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &tsg.MCResult{
		Samples:    res.Samples,
		Converged:  res.Converged,
		Mean:       res.Mean,
		Variance:   res.Variance,
		Std:        res.Std,
		Min:        res.Min,
		Max:        res.Max,
		MeanCIHalf: res.MeanCIHalf,
	}
	if res.Criticality != nil {
		out.Criticality = make([]float64, len(res.Criticality))
		for i := range out.Criticality {
			out.Criticality[i] = res.Criticality[s.arcs.ToWire(i)]
		}
	}
	for _, q := range res.Quantiles {
		out.Quantiles = append(out.Quantiles, tsg.QuantileEstimate{P: q.P, Value: q.Value, CIHalf: q.CIHalf})
	}
	return out, nil
}

func (s *remoteSession) StatsLine() string {
	st := s.stats
	return fmt.Sprintf("server engine: %d full analyses, %d incremental; %d answers from the slack certificate, %d from the what-if rows",
		st.Analyses, st.IncrementalAnalyses, st.FastPathHits, st.TableAnswers)
}
