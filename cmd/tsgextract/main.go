// Command tsgextract derives the Timed Signal Graph of a gate-level
// circuit (.ckt netlist), the TRASPEC step of the paper's flow
// (§VIII.B): verify speed-independence, extract the Signal Graph, write
// it as .tsg (and optionally DOT).
//
// Usage:
//
//	tsgextract [-o out.tsg] [-dot out.dot] [-verify] [-analyze] circuit.ckt
package main

import (
	"flag"
	"fmt"
	"os"

	"tsg"
)

func main() {
	out := flag.String("o", "", "output .tsg path (default: stdout)")
	dotOut := flag.String("dot", "", "write the extracted graph in DOT format to this file")
	verify := flag.Bool("verify", false, "exhaustively verify semi-modularity first (small circuits)")
	analyze := flag.Bool("analyze", false, "run the cycle-time analysis on the extracted graph")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsgextract [flags] circuit.ckt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	n, err := tsg.LoadCircuit(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	c := n.Circuit
	fmt.Fprintf(os.Stderr, "circuit %s: %d signals, %d gates, %d scripted input events\n",
		c.Name(), c.NumSignals(), c.NumGates(), len(n.Inputs))

	if *verify {
		states, err := tsg.VerifyCircuit(c, tsg.VerifyOptions{Inputs: n.Inputs})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "semi-modularity verified over %d states\n", states)
	}

	g, err := tsg.ExtractGraph(c, n.Inputs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "extracted: %v\n", g)

	if *out != "" {
		if err := tsg.SaveGraph(*out, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	} else {
		if err := tsg.WriteGraph(os.Stdout, g); err != nil {
			fatal(err)
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *dotOut)
	}

	if *analyze {
		res, err := tsg.Analyze(g)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cycle time λ = %v\n", res.CycleTime)
		for _, cyc := range res.Critical {
			fmt.Fprintf(os.Stderr, "critical cycle: %s\n", cyc.Format(g))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgextract:", err)
	os.Exit(1)
}
