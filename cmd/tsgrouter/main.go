// Command tsgrouter is the distributed serving front end: a stateless
// router that speaks the same /v1 protocol as one tsgserved but spreads
// graphs across a static pool of backend nodes — rendezvous-hashing
// each graph's content fingerprint to an ordered replica set, fanning
// reads (analyze/slacks/whatif/mc) across the replicas by
// power-of-two-choices on in-flight counts, pinning writes (edit/reset)
// to the primary, and replaying its write journal to keep every replica
// bit-identical through node deaths and restarts.
//
// Usage:
//
//	tsgrouter -nodes URL[,URL...] [-addr host:port] [-replicas N]
//	          [-probe-interval d] [-fail-threshold N] [-readmit-threshold N]
//	          [-hop-timeout d] [-hop-retries N] [-max-body N]
//	          [-trace-buffer N] [-disable-obs] [-version]
//
// The router prints its listen URL on startup (with -addr :0 the kernel
// picks a free port), serves until SIGINT/SIGTERM, then drains.
//
// Health: each node is probed every -probe-interval; -fail-threshold
// consecutive failures (probe or forwarded request) eject it — its
// fingerprints immediately re-hash to the survivors — and
// -readmit-threshold consecutive successful probes re-admit it, upon
// which the router warms it back up by replaying the write journal of
// every graph placed on it. Clients keep their (client, seq) edit
// idempotency end to end: stamps pass through the router to every
// replica unchanged.
//
// Endpoints: the /v1 protocol of tsgserved, plus GET /healthz (OK while
// ≥1 node is live), GET /metrics (tsgrouter_* families), GET
// /debug/cluster (topology + per-graph sync state), GET /debug/trace.
//
// Run the backends durable (-data-dir) for full fault tolerance: an
// ejected node that restarts re-enters with its WAL state, and the
// router replays only what it missed. See README.md "Clustering" and
// EXPERIMENTS.md (CLUSTER) for the measured behavior.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tsg/internal/cluster"
)

// version identifies the build in -version output and the
// tsgrouter_build_info metric. Overridable at link time:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tsgrouter
var version = "dev"

func main() {
	addr := flag.String("addr", "127.0.0.1:7440", "listen address (use :0 for a kernel-assigned port)")
	nodes := flag.String("nodes", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:7436,http://127.0.0.1:7437")
	replicas := flag.Int("replicas", 2, "replica-set size per graph (clamped to the pool size)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "health-probe period per node")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that eject a node")
	readmitThreshold := flag.Int("readmit-threshold", 2, "consecutive successful probes that re-admit an ejected node")
	hopTimeout := flag.Duration("hop-timeout", 15*time.Second, "timeout per forwarded backend attempt")
	hopRetries := flag.Int("hop-retries", 0, "transport retries per hop (failover across replicas is the main retry policy)")
	maxBody := flag.Int64("max-body", 8<<20, "maximum request body size in bytes")
	traceBuffer := flag.Int("trace-buffer", 0, "span ring capacity for /debug/trace (0 = default 4096)")
	disableObs := flag.Bool("disable-obs", false, "strip tracing/metrics (/metrics and /debug/trace answer 404)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("tsgrouter %s %s\n", version, runtime.Version())
		return
	}
	if flag.NArg() != 0 || *nodes == "" {
		fmt.Fprintln(os.Stderr, "usage: tsgrouter -nodes URL[,URL...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var pool []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			pool = append(pool, u)
		}
	}

	r, err := cluster.New(cluster.Config{
		Nodes:            pool,
		Replicas:         *replicas,
		ProbeInterval:    *probeInterval,
		FailThreshold:    *failThreshold,
		ReadmitThreshold: *readmitThreshold,
		HopTimeout:       *hopTimeout,
		HopRetries:       *hopRetries,
		MaxBodyBytes:     *maxBody,
		TraceBuffer:      *traceBuffer,
		DisableObs:       *disableObs,
		Version:          version,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("tsgrouter: %v", err)
	}
	r.Start()
	defer r.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tsgrouter: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: r}

	// The printed URL is the contract scripts rely on (the CI smoke
	// step parses it), so it goes to stdout, unbuffered, first.
	fmt.Printf("tsgrouter listening on http://%s (%d backends, %d replicas)\n", ln.Addr(), len(pool), *replicas)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("tsgrouter: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tsgrouter: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsgrouter: serve: %v", err)
		}
	}
}
