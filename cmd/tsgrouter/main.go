// Command tsgrouter is the distributed serving front end: a stateless
// router that speaks the same /v1 protocol as one tsgserved but spreads
// graphs across a pool of backend nodes — rendezvous-hashing each
// graph's content fingerprint to an ordered replica set, fanning reads
// (analyze/slacks/whatif/mc) across the replicas by power-of-two-choices
// on in-flight counts (with an adaptive hedged backup attempt against
// the second replica), pinning writes (edit/reset) to the primary, and
// replaying its write journal to keep every replica bit-identical
// through node deaths, restarts, and membership changes.
//
// Usage:
//
//	tsgrouter -nodes URL[,URL...] | -nodes-file PATH
//	          [-addr host:port] [-replicas N]
//	          [-probe-interval d] [-fail-threshold N] [-readmit-threshold N]
//	          [-breaker-threshold N] [-breaker-cooldown d] [-breaker-close-after N]
//	          [-disable-hedge] [-hedge-frac F] [-retry-budget-frac F]
//	          [-hop-timeout d] [-hop-retries N] [-max-body N]
//	          [-fault-plan PATH] [-fault-seed N]
//	          [-trace-buffer N] [-disable-obs] [-version]
//
// The router prints its listen URL on startup (with -addr :0 the kernel
// picks a free port), serves until SIGINT/SIGTERM, then drains.
//
// Health: each node is probed every -probe-interval; -fail-threshold
// consecutive failures eject it — its fingerprints immediately re-hash
// to the survivors — and -readmit-threshold consecutive successful
// probes re-admit it, upon which the router warms it back up by
// replaying the write journal of every graph placed on it. Each node
// also carries a circuit breaker: -breaker-threshold consecutive
// FORWARDED-REQUEST failures trip it open even while probes stay green
// (the asymmetric-partition case), it dwells -breaker-cooldown before
// clean probes move it to half-open, and -breaker-close-after
// consecutive successes close it. Hedged reads fire a backup attempt
// after an adaptive delay (p95 of recent hop latency), bounded by
// -hedge-frac of read traffic; failover retries beyond the first
// attempt are bounded by -retry-budget-frac of traffic. Clients keep
// their (client, seq) edit idempotency end to end: stamps pass through
// the router to every replica unchanged.
//
// Membership: -nodes-file names a file with one backend URL per line
// (# comments allowed). The router watches it (~1s mtime poll) and
// applies changes live; SIGHUP forces an immediate reload. Added nodes
// warm-sync before taking reads; removed nodes drain gracefully.
//
// Fault injection: -fault-plan arms a deterministic fault-injection
// transport (internal/fault) on every backend hop, for chaos drills
// against a real deployment; -fault-seed overrides the plan's seed and
// SIGUSR1 advances the plan to its next declared phase. See README.md
// "Resilience" for the plan format.
//
// Endpoints: the /v1 protocol of tsgserved, plus GET /healthz (OK while
// ≥1 node is live), GET /metrics (tsgrouter_* families), GET
// /debug/cluster (topology, breaker states + per-graph sync state),
// GET /debug/trace.
//
// Run the backends durable (-data-dir) for full fault tolerance: an
// ejected node that restarts re-enters with its WAL state, and the
// router replays only what it missed. See README.md "Clustering" and
// "Resilience", and EXPERIMENTS.md (CLUSTER, CHAOS2) for the measured
// behavior.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tsg/internal/cluster"
	"tsg/internal/fault"
)

// version identifies the build in -version output and the
// tsgrouter_build_info metric. Overridable at link time:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tsgrouter
var version = "dev"

// readNodesFile parses a nodes file: one backend base URL per line,
// blank lines and #-comments ignored.
func readNodesFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pool []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			pool = append(pool, line)
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("nodes file %s lists no backends", path)
	}
	return pool, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7440", "listen address (use :0 for a kernel-assigned port)")
	nodes := flag.String("nodes", "", "comma-separated backend base URLs, e.g. http://127.0.0.1:7436,http://127.0.0.1:7437")
	nodesFile := flag.String("nodes-file", "", "file with one backend URL per line; watched for changes (live membership), SIGHUP forces a reload")
	replicas := flag.Int("replicas", 2, "replica-set size per graph (clamped to the pool size)")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "health-probe period per node")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that eject a node")
	readmitThreshold := flag.Int("readmit-threshold", 2, "consecutive successful probes that re-admit an ejected node")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive forwarded-request failures that trip a node's circuit breaker (0 = fail-threshold-1, min 1)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "minimum dwell in the open state before probes can move a breaker to half-open (0 = 2×probe-interval)")
	breakerCloseAfter := flag.Int("breaker-close-after", 2, "consecutive successes that close a half-open breaker")
	disableHedge := flag.Bool("disable-hedge", false, "turn off hedged reads (pure sequential failover)")
	hedgeFrac := flag.Float64("hedge-frac", 0.05, "hedge budget: max fraction of read traffic that may launch a backup attempt")
	retryBudgetFrac := flag.Float64("retry-budget-frac", 0.1, "retry budget: max fraction of traffic that may spend failover/retry attempts")
	hopTimeout := flag.Duration("hop-timeout", 15*time.Second, "timeout per forwarded backend attempt")
	hopRetries := flag.Int("hop-retries", 0, "transport retries per hop (failover across replicas is the main retry policy)")
	maxBody := flag.Int64("max-body", 8<<20, "maximum request body size in bytes")
	faultPlan := flag.String("fault-plan", "", "fault-plan file arming deterministic fault injection on backend hops (chaos drills; SIGUSR1 advances the phase)")
	faultSeed := flag.Int64("fault-seed", 0, "override the fault plan's seed directive")
	traceBuffer := flag.Int("trace-buffer", 0, "span ring capacity for /debug/trace (0 = default 4096)")
	disableObs := flag.Bool("disable-obs", false, "strip tracing/metrics (/metrics and /debug/trace answer 404)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("tsgrouter %s %s\n", version, runtime.Version())
		return
	}
	if flag.NArg() != 0 || (*nodes == "") == (*nodesFile == "") {
		fmt.Fprintln(os.Stderr, "usage: tsgrouter -nodes URL[,URL...] | -nodes-file PATH [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var pool []string
	if *nodesFile != "" {
		var err error
		if pool, err = readNodesFile(*nodesFile); err != nil {
			log.Fatalf("tsgrouter: %v", err)
		}
	} else {
		for _, u := range strings.Split(*nodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				pool = append(pool, u)
			}
		}
	}

	var plan *fault.Plan
	var httpClient *http.Client
	if *faultPlan != "" {
		var err error
		if plan, err = fault.LoadPlan(*faultPlan); err != nil {
			log.Fatalf("tsgrouter: %v", err)
		}
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "fault-seed" })
		if seedSet {
			plan.SetSeed(*faultSeed)
		}
		httpClient = &http.Client{Transport: fault.NewTransport(nil, plan)}
		log.Printf("tsgrouter: fault plan %s armed (phase %q)", *faultPlan, plan.Phase())
	}

	r, err := cluster.New(cluster.Config{
		Nodes:             pool,
		Replicas:          *replicas,
		ProbeInterval:     *probeInterval,
		FailThreshold:     *failThreshold,
		ReadmitThreshold:  *readmitThreshold,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		BreakerCloseAfter: *breakerCloseAfter,
		DisableHedge:      *disableHedge,
		HedgeFrac:         *hedgeFrac,
		RetryBudgetFrac:   *retryBudgetFrac,
		HopTimeout:        *hopTimeout,
		HopRetries:        *hopRetries,
		MaxBodyBytes:      *maxBody,
		TraceBuffer:       *traceBuffer,
		DisableObs:        *disableObs,
		Version:           version,
		Logf:              log.Printf,
		HTTPClient:        httpClient,
	})
	if err != nil {
		log.Fatalf("tsgrouter: %v", err)
	}
	r.Start()
	defer r.Stop()

	// Membership watcher: SIGHUP reloads the nodes file immediately; a
	// ~1s mtime poll picks up edits without a signal. Reload errors are
	// logged and the previous pool stays in effect (a half-written file
	// must not empty the cluster).
	reloadCh := make(chan os.Signal, 1)
	if *nodesFile != "" {
		signal.Notify(reloadCh, syscall.SIGHUP)
		reload := func(trigger string) {
			urls, err := readNodesFile(*nodesFile)
			if err != nil {
				log.Printf("tsgrouter: %s reload: %v (keeping current pool)", trigger, err)
				return
			}
			if err := r.ReloadNodes(urls); err != nil {
				log.Printf("tsgrouter: %s reload: %v (keeping current pool)", trigger, err)
			}
		}
		go func() {
			var lastMod time.Time
			if st, err := os.Stat(*nodesFile); err == nil {
				lastMod = st.ModTime()
			}
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-reloadCh:
					reload("SIGHUP")
				case <-tick.C:
					st, err := os.Stat(*nodesFile)
					if err != nil || st.ModTime().Equal(lastMod) {
						continue
					}
					lastMod = st.ModTime()
					reload("nodes-file")
				}
			}
		}()
	}

	// SIGUSR1 walks an armed fault plan through its declared phases, so
	// a chaos-drill script can stage inject → heal without restarting.
	if plan != nil {
		phaseCh := make(chan os.Signal, 1)
		signal.Notify(phaseCh, syscall.SIGUSR1)
		go func() {
			for range phaseCh {
				log.Printf("tsgrouter: fault plan phase -> %q (%d faults injected so far)", plan.AdvancePhase(), plan.Injected())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tsgrouter: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: r}

	// The printed URL is the contract scripts rely on (the CI smoke
	// step parses it), so it goes to stdout, unbuffered, first.
	fmt.Printf("tsgrouter listening on http://%s (%d backends, %d replicas)\n", ln.Addr(), len(pool), *replicas)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("tsgrouter: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tsgrouter: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsgrouter: serve: %v", err)
		}
	}
}
