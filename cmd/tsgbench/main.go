// Command tsgbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints measured numbers next to the
// paper's and fails loudly on mismatch, so a clean run is an acceptance
// test of the whole reproduction.
//
// Usage:
//
//	tsgbench -list
//	tsgbench -run TAB8D
//	tsgbench -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tsg/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "tsgbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", e.ID, err)
			failed++
		} else {
			fmt.Printf("ok   %s (%v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tsgbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
