// Command tsgbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints measured numbers next to the
// paper's and fails loudly on mismatch, so a clean run is an acceptance
// test of the whole reproduction.
//
// Usage:
//
//	tsgbench -list
//	tsgbench -run TAB8D
//	tsgbench -run all
//	tsgbench -run all -json > results.json
//	tsgbench -run INCR -quick -json            # CI correctness smoke
//	tsgbench -run PERF8B -cpuprofile cpu.out   # profile kernel hot loops
//
// With -json the human-readable experiment output is suppressed and a
// JSON array of {id, title, ok, elapsed_ms[, error]} records is written
// to stdout instead, so successive PRs can append machine-readable runs
// to the performance trajectory (see BENCHMARKS.md).
//
// -quick trims experiments to smoke-test size and disables their
// timing gates (correctness assertions stay), so CI can run them on
// loaded shared runners. -peakrss adds peak-memory columns per
// experiment (sampled Go heap peak + process VmHWM) to both the human
// and JSON output — the CI scale smoke runs SCALE standalone with it
// so the process high-water mark is attributable. -cpuprofile/-memprofile write pprof profiles
// covering the selected experiments — the way to see where kernel time
// goes without editing code (see BENCHMARKS.md "Profiling").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tsg/internal/exp"
)

type result struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	OK        bool    `json:"ok"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
	// Peak-memory columns, present with -peakrss: the sampled peak Go
	// heap occupancy over the experiment (attributable to it) and the
	// process resident-set high-water mark after it (monotone across the
	// whole process; meaningful when tsgbench runs one experiment).
	HeapPeakMB float64 `json:"heap_peak_mb,omitempty"`
	VmHWMMB    float64 `json:"vm_hwm_mb,omitempty"`
}

func main() { os.Exit(realMain()) }

// realMain returns the process exit code instead of calling os.Exit
// directly, so the deferred profile writers (-cpuprofile/-memprofile)
// always flush, even on experiment failure.
func realMain() int {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	jsonOut := flag.Bool("json", false, "write results as JSON to stdout (suppresses experiment tables)")
	quick := flag.Bool("quick", false, "smoke-test mode: shrink experiments and drop timing gates (correctness checks stay)")
	peakRSS := flag.Bool("peakrss", false, "record peak memory per experiment: sampled Go heap peak and /proc self VmHWM (JSON columns heap_peak_mb, vm_hwm_mb)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()
	exp.Quick = *quick

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsgbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tsgbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tsgbench: closing CPU profile: %v\n", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsgbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialise final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tsgbench: writing heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tsgbench: closing heap profile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "tsgbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	results := make([]result, 0, len(selected))
	failed := 0
	for _, e := range selected {
		var out io.Writer = os.Stdout
		if *jsonOut {
			out = io.Discard
		} else {
			fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		}
		var sampler *exp.HeapSampler
		if *peakRSS {
			runtime.GC() // make the sampled peak attributable to this experiment
			sampler = exp.StartHeapSampler(5 * time.Millisecond)
		}
		start := time.Now()
		err := e.Run(out)
		elapsed := time.Since(start)
		r := result{ID: e.ID, Title: e.Title, OK: err == nil,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3}
		if sampler != nil {
			r.HeapPeakMB = float64(sampler.Stop()) / (1 << 20)
			r.VmHWMMB = float64(exp.VmHWMBytes()) / (1 << 20)
		}
		if err != nil {
			r.Error = err.Error()
			failed++
			if !*jsonOut {
				fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", e.ID, err)
			}
		} else if !*jsonOut {
			fmt.Printf("ok   %s (%v)\n", e.ID, elapsed.Round(time.Millisecond))
			if sampler != nil {
				fmt.Printf("     heap peak %.1f MB, process VmHWM %.1f MB\n", r.HeapPeakMB, r.VmHWMMB)
			}
		}
		if !*jsonOut {
			fmt.Println()
		}
		results = append(results, r)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "tsgbench: encoding results: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tsgbench: %d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
