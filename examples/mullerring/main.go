// Muller ring (Fig. 5 / §VIII.D of the paper): build the gate-level
// ring of C-elements with inverter feedback, extract its Timed Signal
// Graph, reproduce the paper's analysis (λ = 20/3 for five stages with
// one token), and sweep ring size and token count to map the classic
// throughput surface of self-timed rings.
package main

import (
	"fmt"
	"log"

	"tsg"
)

// buildRing constructs an n-stage Muller ring: o_k = C(o_{k-1}, i_k),
// i_k = INV(o_{k+1}), with the listed stages initially high (each
// initially-high run boundary is a data token).
func buildRing(n int, high map[int]bool, cDelay, invDelay float64) (*tsg.Circuit, error) {
	b := tsg.NewCircuit(fmt.Sprintf("ring-%d", n))
	o := func(k int) string { return fmt.Sprintf("o%d", (k-1+n)%n+1) }
	i := func(k int) string { return fmt.Sprintf("i%d", (k-1+n)%n+1) }
	for k := 1; k <= n; k++ {
		b.Gate(tsg.CElement, o(k), []string{o(k - 1), i(k)}, cDelay)
		b.Gate(tsg.Inv, i(k), []string{o(k + 1)}, invDelay)
	}
	for k := 1; k <= n; k++ {
		if high[k] {
			b.Init(o(k), tsg.High)
		}
		if !high[(k%n)+1] {
			b.Init(i(k), tsg.High)
		}
	}
	return b.Build()
}

func main() {
	// The paper's ring: five stages, stage 5 high, unit delays.
	c, err := buildRing(5, map[int]bool{5: true}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, g, err := tsg.AnalyzeCircuit(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("five-stage ring: %v\n", g)
	fmt.Printf("border events: %v  (the paper's a↑ b↑ c↑ e↓)\n",
		g.EventNames(g.BorderEvents()))
	fmt.Printf("cycle time λ = %v  (paper: 20/3 ≈ 6.67)\n", res.CycleTime)
	for _, cyc := range res.Critical {
		fmt.Printf("critical cycle (ε=%d): %s\n", cyc.Period, cyc.Format(g))
	}

	// The §VIII.D table: t and δ for the o1+-initiated simulation over
	// ten periods.
	tr, err := tsg.SimulateFrom(g, g.MustEvent("o1+"), 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n o1+-initiated simulation (§VIII.D table):")
	fmt.Println("  i    t(o1+_i)   δ per period   running δ")
	prev := 0.0
	for j := 1; j <= 10; j++ {
		t, _ := tr.Time(g.MustEvent("o1+"), j)
		fmt.Printf("  %-4d %-10g %-14g %.4g\n", j, t, t-prev, t/float64(j))
		prev = t
	}

	// Sweep: ring size at one token — throughput limited by the token's
	// round trip (bubble-limited on small rings).
	fmt.Println("\nring-size sweep (one token, unit delays):")
	fmt.Println("  stages   λ         λ per stage")
	for n := 3; n <= 12; n++ {
		rc, err := buildRing(n, map[int]bool{n: true}, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		r, _, err := tsg.AnalyzeCircuit(rc, nil)
		if err != nil {
			log.Fatal(err)
		}
		lam := r.CycleTime.Float()
		fmt.Printf("  %-8d %-9v %.3f\n", n, r.CycleTime, lam/float64(n))
	}

	// Sweep: token count in a 12-stage ring — the occupancy curve with
	// its token-limited and bubble-limited regimes.
	fmt.Println("\ntoken sweep (12 stages, unit delays):")
	fmt.Println("  tokens   λ")
	for tokens := 1; tokens <= 5; tokens++ {
		high := map[int]bool{}
		// Spread the tokens: a run of initially-high stages per token
		// would merge; place them at maximal spacing instead.
		for t := 0; t < tokens; t++ {
			high[12-(t*12)/tokens] = true
		}
		rc, err := buildRing(12, high, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		r, _, err := tsg.AnalyzeCircuit(rc, nil)
		if err != nil {
			log.Printf("  %-8d (skipped: %v)", tokens, err)
			continue
		}
		fmt.Printf("  %-8d %v\n", tokens, r.CycleTime)
	}
}
