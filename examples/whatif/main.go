// What-if bottleneck hunting on an Engine session: the edit-evaluate
// loop the paper's introduction motivates, run the way the session
// layer intends — compile the graph once, then answer many cheap
// queries against the compiled form.
//
// The program builds an asynchronous-stack control graph (§VIII.B
// shape) with deliberately unbalanced delays, then repeats:
//
//  1. Analyze: cycle time λ and the critical cycle (the bottleneck);
//  2. Slacks: how much headroom every non-critical arc has;
//  3. SensitivitySweep: "what would λ be if this arc were halved?",
//     asked for every arc at once — candidates whose certified slack
//     covers the change are answered without simulating;
//  4. commit the most profitable speed-up with SetDelay and loop.
//
// It finishes with interval bounds under ±10% delay uncertainty and the
// engine's session statistics: how many full analyses the whole hunt
// actually cost versus how many queries the slack certificate absorbed.
package main

import (
	"fmt"
	"log"

	"tsg"
)

// buildStack is the §VIII.B constant-response-time stack control with
// unbalanced delays: the top-level handshake is slow, the shift ripple
// alternates fast and slow cells.
func buildStack(n int) (*tsg.Graph, error) {
	s := func(k int) string { return fmt.Sprintf("s%d", k) }
	rippleDelay := func(k int) float64 { return float64(1 + (k*3)%4) }
	b := tsg.NewGraph(fmt.Sprintf("whatif-stack-%d", n)).
		Events("r+", "a+", "r-", "a-").
		Arc("r+", "a+", 4).
		Arc("a+", "r-", 3).
		Arc("r-", "a-", 4).
		Arc("a-", "r+", 3, tsg.Marked())
	for k := 1; k <= n; k++ {
		b.Events(s(k)+"+", s(k)+"-")
	}
	b.Arc(s(1)+"-", "a+", 2, tsg.Marked()).
		Arc("a+", s(1)+"+", 2)
	for k := 1; k <= n; k++ {
		b.Arc(s(k)+"-", s(k)+"+", rippleDelay(k), tsg.Marked())
		if k < n {
			b.Arc(s(k)+"+", s(k+1)+"+", rippleDelay(k+1))
			b.Arc(s(k+1)+"-", s(k)+"-", rippleDelay(k), tsg.Marked())
		}
		b.Arc(s(k)+"+", s(k)+"-", rippleDelay(k))
	}
	return b.Build()
}

func main() {
	g, err := buildStack(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n", g)

	// Compile once; every query below reuses this session.
	e, err := tsg.NewEngine(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbottleneck hunt: each round halves the most profitable arc")
	for round := 1; round <= 5; round++ {
		res, err := e.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		crit := res.Critical[0]
		fmt.Printf("\nround %d: λ = %-10v bottleneck: %s\n", round, res.CycleTime, crit.Format(e.Graph()))

		slacks, err := e.Slacks()
		if err != nil {
			log.Fatal(err)
		}
		tight := 0
		for _, s := range slacks {
			if s.Tight {
				tight++
			}
		}
		fmt.Printf("  %d of %d core arcs are tight\n", tight, len(slacks))

		// One sweep answers "what if this arc were halved?" for every arc.
		cands := make([]tsg.WhatIf, e.Graph().NumArcs())
		for i := range cands {
			cands[i] = tsg.WhatIf{Arc: i, Delay: e.Delay(i) / 2}
		}
		lams, err := e.SensitivitySweep(cands)
		if err != nil {
			log.Fatal(err)
		}
		bestArc := -1
		bestLam := res.CycleTime
		for i, lam := range lams {
			if lam.Less(bestLam) {
				bestLam, bestArc = lam, i
			}
		}
		if bestArc < 0 {
			fmt.Println("  no single halving lowers λ (bottleneck is shared); stopping")
			break
		}
		a := e.Graph().Arc(bestArc)
		fmt.Printf("  committing: %s -> %s  %g -> %g  (λ %v -> %v)\n",
			e.Graph().Event(a.From).Name, e.Graph().Event(a.To).Name,
			a.Delay, a.Delay/2, res.CycleTime, bestLam)
		if err := e.SetDelay(bestArc, a.Delay/2); err != nil {
			log.Fatal(err)
		}
	}

	// Robustness of the final design under ±10% delay uncertainty; the
	// two extreme analyses run concurrently on the session.
	lo, hi := tsg.Jitter(0.10)
	b, err := e.AnalyzeBounds(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal design under ±10%% delay uncertainty: λ ∈ [%.4g, %.4g]\n",
		b.Min.Float(), b.Max.Float())

	st := e.Stats()
	fmt.Printf("session cost: %d full analyses; %d queries answered from the slack certificate, %d from the what-if rows\n",
		st.Analyses, st.FastPathHits, st.TableAnswers)
}
