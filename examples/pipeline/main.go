// Muller pipeline throughput study: close an n-stage pipeline with its
// environment into a ring, then explore how the cycle time (inverse
// throughput) responds to occupancy and to unbalanced stage delays —
// the workload the paper's introduction motivates (finding the
// bottleneck, i.e. the critical cycle, of a concurrent system).
package main

import (
	"fmt"
	"log"

	"tsg"
)

// buildPipeline builds the Signal Graph of an (n+1)-stage ring: an
// n-stage Muller pipeline with producer/consumer environment folded in,
// holding the given number of data tokens. Stage delays come from
// cDelay(k); inverters take invDelay.
func buildPipeline(n, tokens int, cDelay func(int) float64, invDelay float64) (*tsg.Graph, error) {
	stages := n + 1
	high := make([]bool, stages+1)
	// Spread the tokens at maximal spacing: adjacent initially-high
	// stages would merge into a single data token (NRZ encoding).
	for t := 0; t < tokens; t++ {
		high[stages-(t*stages)/tokens] = true
	}
	mod := func(k int) int { return (k-1+stages)%stages + 1 }
	o := func(k int) string { return fmt.Sprintf("o%d", mod(k)) }
	i := func(k int) string { return fmt.Sprintf("i%d", mod(k)) }
	init := map[string]bool{}
	for k := 1; k <= stages; k++ {
		init[o(k)] = high[k]
		init[i(k)] = !high[mod(k+1)]
	}
	b := tsg.NewGraph(fmt.Sprintf("pipeline-%d-t%d", n, tokens))
	for k := 1; k <= stages; k++ {
		b.Events(o(k)+"+", o(k)+"-", i(k)+"+", i(k)+"-")
	}
	arc := func(u, v string, d float64) {
		// Initial marking: the source's level is already established
		// and the target's first transition consumes it.
		post := u[len(u)-1:] == "+"
		first := "+"
		if init[v[:len(v)-1]] {
			first = "-"
		}
		if init[u[:len(u)-1]] == post && v[len(v)-1:] == first {
			b.Arc(u, v, d, tsg.Marked())
		} else {
			b.Arc(u, v, d)
		}
	}
	for k := 1; k <= stages; k++ {
		d := cDelay(mod(k))
		arc(o(k-1)+"+", o(k)+"+", d)
		arc(i(k)+"+", o(k)+"+", d)
		arc(o(k-1)+"-", o(k)+"-", d)
		arc(i(k)+"-", o(k)+"-", d)
		arc(o(k+1)+"+", i(k)+"-", invDelay)
		arc(o(k+1)+"-", i(k)+"+", invDelay)
	}
	return b.Build()
}

func main() {
	unit := func(int) float64 { return 1 }

	// Occupancy sweep: the canonical throughput-vs-tokens curve. Few
	// tokens: forward latency dominates (token-limited). Many tokens:
	// bubbles become scarce (bubble-limited). The optimum sits between.
	const n = 11 // 12-stage ring
	fmt.Println("occupancy sweep (11-stage pipeline + environment, unit delays):")
	fmt.Println("  tokens  λ        throughput (1/λ)")
	for tokens := 1; tokens <= 10; tokens++ {
		g, err := buildPipeline(n, tokens, unit, 1)
		if err != nil {
			fmt.Printf("  %-7d (unbuildable: %v)\n", tokens, err)
			continue
		}
		res, err := tsg.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		lam := res.CycleTime.Float()
		fmt.Printf("  %-7d %-8v %.4f\n", tokens, res.CycleTime, 1/lam)
	}

	// Bottleneck hunting: slow down stage 4 and watch the critical
	// cycle localise around it.
	fmt.Println("\nbottleneck study (one slow stage, 3 tokens):")
	for _, slow := range []float64{1, 2, 4, 8} {
		delay := func(k int) float64 {
			if k == 4 {
				return slow
			}
			return 1
		}
		g, err := buildPipeline(n, 3, delay, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tsg.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stage-4 delay %-3g -> λ = %-8v critical cycle touches: %v\n",
			slow, res.CycleTime, criticalSignals(g, res))
	}
}

// criticalSignals lists the distinct signals on the first critical cycle.
func criticalSignals(g *tsg.Graph, res *tsg.Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range res.Critical[0].Events {
		s := g.Event(e).Signal
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
