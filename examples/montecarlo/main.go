// Criticality-ranked bottleneck hunting under delay uncertainty: the
// statistical counterpart of examples/whatif.
//
// The deterministic bottleneck hunt asks "which arc bounds λ right
// now?" — but during the edit loop delays are estimates, not facts.
// This program models every delay as a distribution (±15% uniform
// jitter, with the top-level handshake arcs tied into one correlation
// group: they share a driver, so they vary together) and asks the
// Monte-Carlo questions instead:
//
//  1. AnalyzeMC: the λ distribution (mean, spread, quantiles) and the
//     per-arc criticality — in what fraction of delay scenarios does
//     each arc sit on a critical cycle? Arcs critical only "sometimes"
//     are invisible to the deterministic analysis but real bottleneck
//     risks;
//  2. the hunt: repeatedly halve the arc with the highest criticality
//     (ties broken by arc index) and re-sample, watching the
//     95th-percentile λ — the robust design target — fall;
//  3. SlacksMC: slack distributions, showing which arcs are tight in
//     some scenarios yet slack in others (TightFrac strictly between 0
//     and 1 — exactly the arcs a fixed-delay slack report mislabels).
//
// Every sample reuses the engine's compiled kernel: the whole hunt
// below costs thousands of analyses but zero re-Builds and zero
// re-Compiles.
package main

import (
	"fmt"
	"log"
	"sort"

	"tsg"
)

// buildStack is the unbalanced asynchronous-stack control graph of
// examples/whatif (§VIII.B shape).
func buildStack(n int) (*tsg.Graph, error) {
	s := func(k int) string { return fmt.Sprintf("s%d", k) }
	rippleDelay := func(k int) float64 { return float64(1 + (k*3)%4) }
	b := tsg.NewGraph(fmt.Sprintf("mc-stack-%d", n)).
		Events("r+", "a+", "r-", "a-").
		Arc("r+", "a+", 4).
		Arc("a+", "r-", 3).
		Arc("r-", "a-", 4).
		Arc("a-", "r+", 3, tsg.Marked())
	for k := 1; k <= n; k++ {
		b.Events(s(k)+"+", s(k)+"-")
	}
	b.Arc(s(1)+"-", "a+", 2, tsg.Marked()).
		Arc("a+", s(1)+"+", 2)
	for k := 1; k <= n; k++ {
		b.Arc(s(k)+"-", s(k)+"+", rippleDelay(k), tsg.Marked())
		if k < n {
			b.Arc(s(k)+"+", s(k+1)+"+", rippleDelay(k+1))
			b.Arc(s(k+1)+"-", s(k)+"-", rippleDelay(k), tsg.Marked())
		}
		b.Arc(s(k)+"+", s(k)+"-", rippleDelay(k))
	}
	return b.Build()
}

// uncertainModel jitters every delay by ±15% and correlates the four
// top-level handshake arcs (they share a driver).
func uncertainModel(g *tsg.Graph) (*tsg.DelayModel, error) {
	m, err := tsg.JitterUniformModel(g, 0.15)
	if err != nil {
		return nil, err
	}
	if _, err := m.Correlate(0, 1, 2, 3); err != nil {
		return nil, err
	}
	return m, nil
}

func main() {
	g, err := buildStack(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n", g)

	e, err := tsg.NewEngine(g)
	if err != nil {
		log.Fatal(err)
	}
	opts := tsg.MCOptions{
		Samples: 512, Seed: 7,
		Quantiles:   []float64{0.5, 0.95},
		Criticality: true,
	}

	fmt.Println("\nbottleneck hunt under ±15% delay uncertainty:")
	fmt.Println("each round halves the arc most often critical across scenarios")
	for round := 1; round <= 4; round++ {
		model, err := uncertainModel(g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.AnalyzeMC(model, opts)
		if err != nil {
			log.Fatal(err)
		}
		q50, _ := res.Quantile(0.5)
		q95, _ := res.Quantile(0.95)
		fmt.Printf("\nround %d: λ mean %.3f  median %.3f  q95 %.3f  spread [%.3f, %.3f]\n",
			round, res.Mean, q50.Value, q95.Value, res.Min, res.Max)

		// Rank arcs by criticality; report the ones that are bottleneck
		// risks without being certain bottlenecks.
		type hit struct {
			arc  int
			crit float64
		}
		var hits []hit
		sometimes := 0
		for i, c := range res.Criticality {
			if c > 0 {
				hits = append(hits, hit{i, c})
				if c < 1 {
					sometimes++
				}
			}
		}
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].crit != hits[j].crit {
				return hits[i].crit > hits[j].crit
			}
			return hits[i].arc < hits[j].arc
		})
		fmt.Printf("  %d arcs ever critical, %d of them only in some scenarios:\n", len(hits), sometimes)
		for i, h := range hits {
			if i == 5 {
				break
			}
			a := g.Arc(h.arc)
			fmt.Printf("    %-4s -> %-4s  delay %-4g critical in %5.1f%% of scenarios\n",
				g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, 100*h.crit)
		}

		best := hits[0].arc
		a := g.Arc(best)
		fmt.Printf("  committing: %s -> %s  %g -> %g\n",
			g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Delay/2)
		if err := e.SetDelay(best, a.Delay/2); err != nil {
			log.Fatal(err)
		}
		// The engine edits its session view; rebuild the comparison graph
		// for the next round's model from the engine's current delays.
		g = e.Graph()
	}

	// Slack distributions on the final design: arcs with TightFrac
	// strictly inside (0, 1) are the scenario-dependent bottlenecks.
	model, err := uncertainModel(g)
	if err != nil {
		log.Fatal(err)
	}
	slacks, res, err := e.SlacksMC(model, tsg.MCOptions{Samples: 256, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	mixed := 0
	for _, s := range slacks {
		if s.TightFrac > 0 && s.TightFrac < 1 {
			mixed++
		}
	}
	fmt.Printf("\nfinal design: λ mean %.3f (std %.3f); %d of %d core arcs are tight only in some scenarios\n",
		res.Mean, res.Std, mixed, len(slacks))

	st := e.Stats()
	fmt.Printf("session cost: %d compiled-kernel analyses, zero re-Builds/re-Compiles\n", st.Analyses)
}
