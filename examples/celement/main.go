// C-element oscillator (Fig. 1 of the paper), end to end:
//
//  1. build the gate-level circuit of Fig. 1a (a C-element, two NOR
//     gates and a buffer, with per-pin delays);
//  2. run the timed event-driven simulation and render the timing
//     diagram of Fig. 1c;
//  3. extract the Timed Signal Graph of Fig. 1b;
//  4. analyse it: cycle time 10, critical cycle a+ -> c+ -> a- -> c-,
//     with the border-event distance tables of §VIII.C.
package main

import (
	"fmt"
	"log"
	"os"

	"tsg"
)

func main() {
	// Fig. 1a. The arc delays of Fig. 1b are the pin delays here.
	c, err := tsg.NewCircuit("oscillator").
		Input("e", tsg.High).
		Gate(tsg.Buf, "f", []string{"e"}, 3).
		Gate(tsg.Nor, "a", []string{"e", "c"}, 2, 2).
		Gate(tsg.Nor, "b", []string{"f", "c"}, 1, 1).
		Gate(tsg.CElement, "c", []string{"a", "b"}, 3, 2).
		Init("f", tsg.High).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	script := []tsg.InputEvent{{Signal: "e", Time: 0, Level: tsg.Low}}

	// The environment lowers e at t=0; the circuit then oscillates.
	sim, err := tsg.SimulateCircuit(c, tsg.CircuitSimOptions{
		Inputs: script, MaxTime: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("timed circuit simulation (first 30 time units):")
	for _, name := range []string{"e", "f", "a", "b", "c"} {
		fmt.Printf("  %-2s switches at %v\n", name, sim.Times(c.MustSignal(name)))
	}

	// Speed-independence check over all interleavings (small circuit).
	states, err := tsg.VerifyCircuit(c, tsg.VerifyOptions{Inputs: script})
	if err != nil {
		log.Fatalf("not semi-modular: %v", err)
	}
	fmt.Printf("\nsemi-modularity verified over %d states\n", states)

	// Extraction (the TRASPEC step) and analysis.
	res, g, err := tsg.AnalyzeCircuit(c, script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted Timed Signal Graph: %v\n", g)
	fmt.Printf("cycle time λ = %v\n", res.CycleTime)
	for _, cyc := range res.Critical {
		fmt.Printf("critical cycle: %s\n", cyc.Format(g))
	}
	fmt.Println("\nborder-event distance series (§VIII.C):")
	for _, s := range res.Series {
		fmt.Printf("  δ_{%s}: %v  (on critical cycle: %v)\n",
			g.Event(s.Event).Name, s.Distances, s.OnCritical)
	}

	// Fig. 1c: the timing diagram reconstructed from the Signal Graph's
	// plain timing simulation.
	tr, err := tsg.Simulate(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntiming diagram (Fig. 1c):")
	if err := tr.Diagram().Render(os.Stdout, 1); err != nil {
		log.Fatal(err)
	}

	// Fig. 1d: the a+-initiated diagram forgets the initial history;
	// the occurrence distance is 10 from the start.
	trA, err := tsg.SimulateFrom(g, g.MustEvent("a+"), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na+-initiated timing diagram (Fig. 1d):")
	if err := trA.Diagram().Render(os.Stdout, 1); err != nil {
		log.Fatal(err)
	}
}
