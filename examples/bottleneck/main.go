// Bottleneck hunting: the workflow the paper's introduction motivates —
// "the sequence of events determining the cycle time, called the
// critical cycle, may be viewed as the bottleneck of the system".
//
// Starting from the Fig. 1 oscillator, this example repeatedly finds the
// critical cycle, inspects per-arc slacks (the dual of the Burns LP),
// speeds up the tightest arc, and re-analyses — the performance
// debugging loop a designer would run. It finishes with interval-delay
// bounds (λ under ±10% delay uncertainty) and a cross-check of four
// independent algorithms.
package main

import (
	"fmt"
	"log"

	"tsg"
)

func main() {
	g, err := tsg.NewGraph("oscillator").
		Event("e-", tsg.NonRepetitive()).
		Event("f-", tsg.NonRepetitive()).
		Events("a+", "a-", "b+", "b-", "c+", "c-").
		Arc("e-", "a+", 2, tsg.Once()).
		Arc("e-", "f-", 3).
		Arc("f-", "b+", 1, tsg.Once()).
		Arc("a+", "c+", 3).
		Arc("b+", "c+", 2).
		Arc("c+", "a-", 2).
		Arc("c+", "b-", 1).
		Arc("a-", "c-", 3).
		Arc("b-", "c-", 2).
		Arc("c-", "a+", 2, tsg.Marked()).
		Arc("c-", "b+", 1, tsg.Marked()).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("optimisation loop: halve the slowest critical arc each round")
	for round := 1; round <= 4; round++ {
		res, err := tsg.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		crit := res.Critical[0]
		fmt.Printf("\nround %d: λ = %-14v critical: %s\n", round, res.CycleTime, crit.Format(g))

		// Slack report: tight arcs are the bottleneck set.
		slacks, err := tsg.Slacks(g, res.CycleTime)
		if err != nil {
			log.Fatal(err)
		}
		tight := 0
		for _, s := range slacks {
			if s.Tight {
				tight++
			}
		}
		fmt.Printf("  %d of %d core arcs are tight\n", tight, len(slacks))

		// Attack the slowest arc on the critical cycle.
		slowest, best := -1, 0.0
		for _, ai := range crit.Arcs {
			if d := g.Arc(ai).Delay; d > best {
				best = d
				slowest = ai
			}
		}
		if best <= 0.5 {
			fmt.Println("  nothing left to optimise")
			break
		}
		a := g.Arc(slowest)
		fmt.Printf("  speeding up %s -> %s: %g -> %g\n",
			g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Delay/2)
		g, err = g.WithArcDelay(slowest, a.Delay/2)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Robustness: how much can λ move under ±10% delay uncertainty?
	lo, hi := tsg.Jitter(0.10)
	b, err := tsg.AnalyzeBounds(g, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal design under ±10%% delay uncertainty: λ ∈ [%.4g, %.4g]\n", b.Min.Float(), b.Max.Float())

	// Agreement of four independent algorithms on the final graph.
	res, err := tsg.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	karp, err := tsg.CycleTimeKarp(g)
	if err != nil {
		log.Fatal(err)
	}
	howard, err := tsg.CycleTimeHoward(g)
	if err != nil {
		log.Fatal(err)
	}
	mp, err := tsg.CycleTimeMaxPlus(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check: timing simulation %v | Karp %v | Howard %v | max-plus eigenvalue %v\n",
		res.CycleTime, karp, howard, mp)
}
