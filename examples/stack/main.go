// Asynchronous stack (§VIII.B of the paper): the paper benchmarks its
// algorithm on the Signal Graph of an asynchronous stack with constant
// response time — 66 events and on the order of a hundred arcs. This
// example builds the stack control graph at several depths, shows that
// the cycle time (the push-to-push period seen by the environment) is
// independent of depth, and times the analysis at the paper's size.
package main

import (
	"fmt"
	"log"
	"time"

	"tsg"
)

// buildStack models the control of a constant-response-time stack of n
// cells: a four-phase handshake at the top (r+ a+ r- a-), a shift ripple
// s1+ .. sn+ running down the cells concurrently with the
// acknowledgement, and tokenised completion dependencies so that depth
// adds concurrency rather than latency.
func buildStack(n int) (*tsg.Graph, error) {
	s := func(k int) string { return fmt.Sprintf("s%d", k) }
	b := tsg.NewGraph(fmt.Sprintf("stack-%d", n)).
		Events("r+", "a+", "r-", "a-").
		Arc("r+", "a+", 1).
		Arc("a+", "r-", 1).
		Arc("r-", "a-", 1).
		Arc("a-", "r+", 1, tsg.Marked())
	for k := 1; k <= n; k++ {
		b.Events(s(k)+"+", s(k)+"-")
	}
	b.Arc(s(1)+"-", "a+", 1, tsg.Marked()).
		Arc("a+", s(1)+"+", 1)
	for k := 1; k <= n; k++ {
		b.Arc(s(k)+"-", s(k)+"+", 1, tsg.Marked())
		if k < n {
			b.Arc(s(k)+"+", s(k+1)+"+", 1)
			b.Arc(s(k+1)+"-", s(k)+"-", 1, tsg.Marked())
		}
		b.Arc(s(k)+"+", s(k)+"-", 1)
	}
	return b.Build()
}

func main() {
	fmt.Println("constant response time: λ vs stack depth")
	fmt.Println("  cells  events  arcs  border  λ")
	for _, n := range []int{1, 2, 4, 8, 16, 31, 64} {
		g, err := buildStack(n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tsg.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6d %-7d %-5d %-7d %v\n",
			n, g.NumEvents(), g.NumArcs(), len(g.BorderEvents()), res.CycleTime)
	}

	// The paper's benchmark size: 66 events (31 cells). The paper
	// reports 74 CPU ms on a DEC 5000 (§VIII.B).
	g, err := buildStack(31)
	if err != nil {
		log.Fatal(err)
	}
	const runs = 50
	start := time.Now()
	var res *tsg.Result
	for i := 0; i < runs; i++ {
		res, err = tsg.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
	}
	per := time.Since(start) / runs
	fmt.Printf("\n%s: %d events, %d arcs\n", g.Name(), g.NumEvents(), g.NumArcs())
	fmt.Printf("cycle time λ = %v, critical cycle: %s\n",
		res.CycleTime, res.Critical[0].Format(g))
	fmt.Printf("analysis time: %v per run (paper: 74 ms on a 1994 DEC 5000)\n", per)
}
