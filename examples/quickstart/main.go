// Quickstart: build a small Timed Signal Graph with the public API,
// compute its cycle time and critical cycle, and inspect the timing
// simulation — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"tsg"
)

func main() {
	// A three-stage token ring: x+ -> y+ -> z+ -> x+ with one token and
	// delays 2, 3, 4. Its cycle time is the loop latency, 9.
	g, err := tsg.NewGraph("ring3").
		Events("x+", "y+", "z+").
		Arc("x+", "y+", 2).
		Arc("y+", "z+", 3).
		Arc("z+", "x+", 4, tsg.Marked()).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	res, err := tsg.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle time λ = %v\n", res.CycleTime)
	for _, c := range res.Critical {
		fmt.Printf("critical cycle: %s  (length %g over %d period)\n",
			c.Format(g), c.Length, c.Period)
	}

	// The per-border-event distance series the algorithm maximised
	// (Prop. 7 of the paper).
	for _, s := range res.Series {
		fmt.Printf("border event %-3s δ series %v  on critical cycle: %v\n",
			g.Event(s.Event).Name, s.Distances, s.OnCritical)
	}

	// A plain timing simulation (§IV.A): occurrence times per period.
	tr, err := tsg.Simulate(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < tr.Periods(); p++ {
		t, _ := tr.Time(g.MustEvent("x+"), p)
		fmt.Printf("t(x+_%d) = %g\n", p, t)
	}

	// Graphs serialise to a simple text format.
	fmt.Println("\n.tsg serialisation:")
	if err := tsg.WriteGraph(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
}
