package client_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"tsg"
	"tsg/client"
	"tsg/internal/gen"
	"tsg/internal/serve"
)

func startServer(t *testing.T) (*client.Client, *serve.Server) {
	t.Helper()
	s := serve.New(serve.Config{})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return client.New(srv.URL, client.WithHTTPClient(srv.Client())), s
}

func TestClientRoundTrip(t *testing.T) {
	cl, s := startServer(t)
	ctx := context.Background()

	g := gen.Oscillator()
	eng, err := tsg.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want, err := eng.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	up, err := cl.Upload(ctx, g)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if up.Fingerprint != tsg.Fingerprint(g) {
		t.Fatalf("upload fingerprint %s != tsg.Fingerprint %s", up.Fingerprint, tsg.Fingerprint(g))
	}

	res, err := cl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Lambda.Text != want.CycleTime.Normalize().String() {
		t.Fatalf("served λ %s, want %v", res.Lambda.Text, want.CycleTime)
	}
	if !res.EngineCached {
		t.Fatal("analyze by fingerprint missed the engine cache")
	}

	sl, err := cl.Slacks(ctx, client.ByFingerprint(up.Fingerprint))
	if err != nil {
		t.Fatalf("Slacks: %v", err)
	}
	if len(sl.Slacks) == 0 {
		t.Fatal("no slacks served")
	}

	// Wire arc indices are canonical; ArcMap translates the local ones.
	arcs := client.NewArcMap(g)
	local := []client.WhatIfQuery{
		{Arc: 0, Delay: g.Arc(0).Delay * 2},
		{Arc: 1, Delay: g.Arc(1).Delay * 0.5},
	}
	queries := make([]client.WhatIfQuery, len(local))
	for i, q := range local {
		queries[i] = client.WhatIfQuery{Arc: arcs.ToWire(q.Arc), Delay: q.Delay}
	}
	wi, err := cl.WhatIf(ctx, client.ByFingerprint(up.Fingerprint), queries)
	if err != nil {
		t.Fatalf("WhatIf: %v", err)
	}
	for i, q := range local {
		oracle, err := eng.Sensitivity(q.Arc, q.Delay)
		if err != nil {
			t.Fatalf("Sensitivity: %v", err)
		}
		if wi.Lambdas[i].Text != oracle.Normalize().String() {
			t.Fatalf("what-if %d: served %s, oracle %v", i, wi.Lambdas[i].Text, oracle)
		}
	}

	mc, err := cl.MC(ctx, client.ByFingerprint(up.Fingerprint), client.MCRequest{
		Samples: 32, Seed: 5, Jitter: 0.1, Workers: 1,
	})
	if err != nil {
		t.Fatalf("MC: %v", err)
	}
	if mc.Samples != 32 || mc.Min > mc.Mean || mc.Mean > mc.Max {
		t.Fatalf("MC summary inconsistent: %+v", mc)
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.OK || h.Graphs != 1 {
		t.Fatalf("health = %+v", h)
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if metrics == "" {
		t.Fatal("empty metrics")
	}
	if st := s.Cache().Stats(); st.Compiles != 1 {
		t.Fatalf("%d compiles for one graph, want 1", st.Compiles)
	}
}

func TestClientInlineGraphAndDist(t *testing.T) {
	cl, _ := startServer(t)
	ctx := context.Background()
	g := gen.Oscillator()

	ref, err := client.ByGraph(g)
	if err != nil {
		t.Fatalf("ByGraph: %v", err)
	}
	res, err := cl.Analyze(ctx, ref)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Fingerprint != tsg.Fingerprint(g) {
		t.Fatal("inline analyze fingerprint mismatch")
	}

	// An annotated model keys differently and drives the served MC.
	model, err := tsg.JitterUniformModel(g, 0.2)
	if err != nil {
		t.Fatalf("JitterUniformModel: %v", err)
	}
	dref, err := client.ByGraphDist(g, model)
	if err != nil {
		t.Fatalf("ByGraphDist: %v", err)
	}
	mc, err := cl.MC(ctx, dref, client.MCRequest{Samples: 16, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("MC: %v", err)
	}
	if mc.Fingerprint == res.Fingerprint {
		t.Fatal("annotated graph shares the deterministic fingerprint")
	}
	if mc.Std == 0 {
		t.Fatal("annotated MC degenerate (distributions not applied)")
	}
}

func TestClientErrors(t *testing.T) {
	cl, _ := startServer(t)
	ctx := context.Background()
	_, err := cl.Analyze(ctx, client.ByFingerprint("deadbeef"))
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown fingerprint: err = %v, want APIError 404", err)
	}
	_, err = cl.Analyze(ctx, client.GraphRef{})
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("empty ref: err = %v, want APIError 400", err)
	}
}

func asAPIError(err error, target **client.APIError) bool {
	if e, ok := err.(*client.APIError); ok {
		*target = e
		return true
	}
	return false
}
