package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsg"
	"tsg/client"
	"tsg/internal/gen"
	"tsg/internal/serve"
)

// flaky503 answers 503 + Retry-After for the first `sheds` requests to
// each path, then proxies to the real serve handler — a server that
// recovers from a transient overload.
type flaky503 struct {
	inner http.Handler
	sheds int32
	seen  atomic.Int32
}

func (f *flaky503) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.sheds {
		w.Header().Set("Retry-After", "0")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "overloaded: retry"})
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestRetryRecoversFrom503(t *testing.T) {
	s := serve.New(serve.Config{})
	f := &flaky503{inner: s, sheds: 2}
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetries(3),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))

	g := gen.Oscillator()
	up, err := cl.Upload(context.Background(), g)
	if err != nil {
		t.Fatalf("Upload through 2 sheds: %v", err)
	}
	if up.Fingerprint != tsg.Fingerprint(g) {
		t.Fatalf("fingerprint %s after retries, want %s", up.Fingerprint, tsg.Fingerprint(g))
	}
	if n := f.seen.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 sheds + 1 success)", n)
	}
}

func TestRetryExhaustionSurfacesAPIError(t *testing.T) {
	s := serve.New(serve.Config{})
	f := &flaky503{inner: s, sheds: 1 << 30} // never recovers
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetries(2),
		client.WithBackoff(time.Millisecond, 2*time.Millisecond))

	_, err := cl.Analyze(context.Background(), client.ByFingerprint("deadbeef"))
	var api *client.APIError
	if !errors.As(err, &api) {
		t.Fatalf("want *APIError after exhausted 503 retries, got %T: %v", err, err)
	}
	if api.Status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", api.Status)
	}
	var unreach *client.UnreachableError
	if errors.As(err, &unreach) {
		t.Fatal("503 replies are HTTP answers, not unreachability")
	}
	if n := f.seen.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", n)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "bad request"})
	}))
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithRetries(5))
	_, err := cl.Analyze(context.Background(), client.ByFingerprint("x"))
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("4xx was retried: %d attempts", n)
	}
}

func TestUnreachableAfterTransportFailures(t *testing.T) {
	// A server that existed and is gone: connection refused every time.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	cl := client.New(url,
		client.WithRetries(2),
		client.WithBackoff(time.Millisecond, 2*time.Millisecond),
		client.WithTimeout(time.Second))

	_, err := cl.Health(context.Background())
	var unreach *client.UnreachableError
	if !errors.As(err, &unreach) {
		t.Fatalf("want *UnreachableError, got %T: %v", err, err)
	}
	if unreach.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", unreach.Attempts)
	}
	if !strings.Contains(err.Error(), "server unreachable after 3 attempts") {
		t.Fatalf("message %q lacks the unreachable preamble", err.Error())
	}
	if !strings.Contains(err.Error(), url) {
		t.Fatalf("message %q lacks the base URL", err.Error())
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := client.New(url, client.WithRetries(5), client.WithBackoff(time.Second, time.Second))
	start := time.Now()
	_, err := cl.Health(ctx)
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled request took %v — retries did not stop", d)
	}
}

// TestEditRetryAppliesExactlyOnce replays the lost-response scenario:
// the server applies an edit but the reply never reaches the client,
// which retries the same stamped request. The dedupe table must answer
// the retry without re-applying.
type dropFirstEditReply struct {
	inner   http.Handler
	dropped atomic.Bool
}

func (d *dropFirstEditReply) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/edit" && d.dropped.CompareAndSwap(false, true) {
		// Let the server apply the edit, then destroy the reply so the
		// client sees a transport error.
		rec := httptest.NewRecorder()
		d.inner.ServeHTTP(rec, r)
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("response writer is not a hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	d.inner.ServeHTTP(w, r)
}

func TestEditRetryAppliesExactlyOnce(t *testing.T) {
	s := serve.New(serve.Config{})
	d := &dropFirstEditReply{inner: s}
	srv := httptest.NewServer(d)
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetries(3),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	ctx := context.Background()

	g := gen.Oscillator()
	up, err := cl.Upload(ctx, g)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)

	// The first edit's reply is dropped post-apply; the client retries
	// under the same (client, seq) stamp and must get a deduped ack with
	// the λ of a single application.
	ed, err := cl.Edit(ctx, ref, []client.DelayEdit{{Arc: 0, Delay: 9.25}})
	if err != nil {
		t.Fatalf("Edit through dropped reply: %v", err)
	}
	if !ed.Deduped {
		t.Fatal("retried edit was not deduped — it re-applied")
	}

	// The session baseline reflects exactly one application.
	res, err := cl.Analyze(ctx, ref)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Lambda.Text != ed.Lambda.Text {
		t.Fatalf("post-retry λ %s != edit ack λ %s", res.Lambda.Text, ed.Lambda.Text)
	}

	// A fresh edit gets a fresh seq and applies normally.
	ed2, err := cl.Edit(ctx, ref, []client.DelayEdit{{Arc: 0, Delay: 3.5}})
	if err != nil {
		t.Fatalf("second Edit: %v", err)
	}
	if ed2.Deduped || ed2.Applied != 1 {
		t.Fatalf("second edit deduped=%v applied=%d, want fresh apply", ed2.Deduped, ed2.Applied)
	}
}

func TestClientIDStampsAreUnique(t *testing.T) {
	a, b := client.New("http://x"), client.New("http://x")
	if a.ClientID() == b.ClientID() {
		t.Fatalf("two clients share id %s", a.ClientID())
	}
	if !strings.HasPrefix(a.ClientID(), "cli-") {
		t.Fatalf("client id %q lacks cli- prefix", a.ClientID())
	}
}
