package client

import (
	"testing"
	"time"
)

// TestBackoffDelayHonorsHint checks the Retry-After precedence rule:
// a server hint overrides the jittered exponential entirely, and
// without one the delay stays inside the jitter envelope and cap.
func TestBackoffDelayHonorsHint(t *testing.T) {
	c := New("http://example.invalid", WithBackoff(100*time.Millisecond, 2*time.Second))

	if d := c.backoffDelay(0, time.Second); d != time.Second {
		t.Fatalf("hinted delay %v, want exactly 1s", d)
	}
	if d := c.backoffDelay(5, 3*time.Second); d != 3*time.Second {
		t.Fatalf("hint must bypass the cap: got %v, want 3s", d)
	}
	for attempt := 0; attempt < 10; attempt++ {
		envelope := 100 * time.Millisecond << uint(attempt)
		if envelope > 2*time.Second || envelope <= 0 {
			envelope = 2 * time.Second
		}
		for i := 0; i < 50; i++ {
			if d := c.backoffDelay(attempt, 0); d < 0 || d > envelope {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, envelope)
			}
		}
	}
	// Overflow-safe: absurd attempt counts still land under the cap.
	if d := c.backoffDelay(200, 0); d < 0 || d > 2*time.Second {
		t.Fatalf("attempt 200: delay %v outside cap", d)
	}
}
