package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tsg/client"
	"tsg/internal/serve"
)

// TestBackoffNeverSleepsPastDeadline pins the deadline-aware backoff
// rule: when the next computed wait (here a 5s Retry-After hint)
// cannot fit inside the request context's remaining deadline, the
// retry loop must return the last real failure immediately instead of
// sleeping into the deadline — burning the caller's budget to
// manufacture a DeadlineExceeded that hides the actual 503.
func TestBackoffNeverSleepsPastDeadline(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "5")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "overloaded: retry"})
	}))
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetries(3))

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Analyze(ctx, client.ByFingerprint("deadbeef"))
	elapsed := time.Since(start)

	// The 5s hint can never fit in the 200ms deadline: exactly one
	// attempt, no sleep, immediate return.
	if elapsed >= 200*time.Millisecond {
		t.Fatalf("call took %v: backoff slept into the context deadline", elapsed)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server hit %d times, want 1 (no retry fits the deadline)", n)
	}
	// The surfaced error is the real failure (503 → OverloadError), not
	// a context error minted while waiting.
	var ov *client.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError, got %T: %v", err, err)
	}
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped APIError 503, got %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("real failure masked by DeadlineExceeded: %v", err)
	}
}
