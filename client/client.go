// Package client is the Go client of the tsg analysis service
// (internal/serve, cmd/tsgserved): upload a Timed Signal Graph once,
// then issue analyze / slacks / batched what-if / Monte-Carlo queries
// by fingerprint, sharing the server's compiled engine with every
// other client of the same graph.
//
//	cl := client.New("http://127.0.0.1:7436")
//	up, err := cl.Upload(ctx, g)
//	res, err := cl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
//	fmt.Println(res.Lambda.Text)
//	wi, err := cl.WhatIf(ctx, client.ByFingerprint(up.Fingerprint),
//		[]client.WhatIfQuery{{Arc: 3, Delay: 5}, {Arc: 7, Delay: 2}})
//
// Upload is an optimisation, not a requirement: every query accepts
// client.ByGraph(g), which inlines the .tsg text — the server
// fingerprints it and still shares the engine. tsgtime -serve routes
// the CLI through this package.
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tsg"
	"tsg/internal/serve"
)

// Wire types, shared with the server so the protocol cannot drift.
type (
	// GraphRef references a graph by inline .tsg text or fingerprint.
	GraphRef = serve.GraphRef
	// Lambda is a served cycle time (exact rational + float + text).
	Lambda = serve.Lambda
	// CriticalCycle is one served critical cycle, events by name.
	CriticalCycle = serve.CriticalCycle
	// AnalyzeResponse is the outcome of Analyze.
	AnalyzeResponse = serve.AnalyzeResponse
	// SlacksResponse is the outcome of Slacks.
	SlacksResponse = serve.SlacksResponse
	// ArcSlack is one served arc slack.
	ArcSlack = serve.ArcSlack
	// WhatIfQuery is one delay assignment of a batched what-if.
	WhatIfQuery = serve.WhatIfQuery
	// WhatIfResponse is the outcome of WhatIf.
	WhatIfResponse = serve.WhatIfResponse
	// EngineStats mirrors the serving engine's cumulative counters.
	EngineStats = serve.EngineStats
	// MCRequest tunes a served Monte-Carlo run.
	MCRequest = serve.MCRequest
	// MCResponse is the outcome of MC.
	MCResponse = serve.MCResponse
	// DelayEdit is one committed delay assignment of an Edit.
	DelayEdit = serve.DelayEdit
	// EditRequest is the full edit protocol request, for callers that
	// manage their own idempotency stamps (see EditStamped).
	EditRequest = serve.EditRequest
	// EditResponse is the outcome of Edit.
	EditResponse = serve.EditResponse
	// FingerprintResponse is the outcome of Fingerprint.
	FingerprintResponse = serve.FingerprintResponse
	// UploadResponse is the outcome of Upload.
	UploadResponse = serve.UploadResponse
	// HealthResponse is the outcome of Health.
	HealthResponse = serve.HealthResponse
)

// ByGraph references a query's graph by inline .tsg text.
func ByGraph(g *tsg.Graph) (GraphRef, error) {
	var b bytes.Buffer
	if err := tsg.WriteGraph(&b, g); err != nil {
		return GraphRef{}, err
	}
	return GraphRef{Graph: b.String()}, nil
}

// ByGraphDist references a graph with its delay model inlined, so
// served Monte-Carlo runs sample the model's distributions.
func ByGraphDist(g *tsg.Graph, m *tsg.DelayModel) (GraphRef, error) {
	var b bytes.Buffer
	if err := tsg.WriteGraphDist(&b, g, m); err != nil {
		return GraphRef{}, err
	}
	return GraphRef{Graph: b.String()}, nil
}

// ByFingerprint references a previously uploaded graph. For graphs
// without distribution annotations the fingerprint equals
// tsg.Fingerprint(g), so it can be computed without any upload.
func ByFingerprint(fp string) GraphRef { return GraphRef{Fingerprint: fp} }

// ArcMap translates between a local graph's declaration-order arc
// indices and the canonical wire indices of the protocol. The
// fingerprint is invariant under arc declaration order, so clients
// holding the same graph in different orders share one server engine;
// the canonical rank (tsg.CanonicalArcOrder) is the index space they
// also share. Build one ArcMap per graph and translate query arcs
// with ToWire and response arcs (slacks, critical cycles, criticality)
// with FromWire. A graph serialized and parsed in the same order maps
// identically on both sides, so the translation is exact.
type ArcMap struct {
	toWire   []int // local arc index -> canonical rank
	fromWire []int // canonical rank -> local arc index
}

// NewArcMap builds the wire translation for a local graph.
func NewArcMap(g *tsg.Graph) *ArcMap {
	fromWire := tsg.CanonicalArcOrder(g)
	toWire := make([]int, len(fromWire))
	for k, i := range fromWire {
		toWire[i] = k
	}
	return &ArcMap{toWire: toWire, fromWire: fromWire}
}

// ToWire converts a local arc index to its canonical wire index.
func (m *ArcMap) ToWire(local int) int { return m.toWire[local] }

// FromWire converts a canonical wire index to the local arc index.
func (m *ArcMap) FromWire(wire int) int { return m.fromWire[wire] }

// NumArcs returns the number of arcs the map covers.
func (m *ArcMap) NumArcs() int { return len(m.toWire) }

// APIError is a non-2xx service reply.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // the server's error message
	// RetryAfter is the server's Retry-After hint on a 503 (0 when the
	// reply carried none). The client's retry loop honours it.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tsg service: %s (HTTP %d)", e.Msg, e.Status)
}

// OverloadError reports that the server shed the request with 503 on
// the final attempt — the retry budget ran out while the service was
// overloaded. It wraps the last *APIError, so errors.As against either
// type matches; RetryAfter carries the server's final backoff hint for
// callers that want to schedule their own retry.
type OverloadError struct {
	Attempts   int           // attempts made (1 + retries)
	Sheds      int           // how many of them were 503 sheds
	RetryAfter time.Duration // the last Retry-After hint (0 if none)
	Err        *APIError     // the final 503 reply
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server overloaded after %d attempts (%d sheds): %s", e.Attempts, e.Sheds, e.Err.Msg)
}

func (e *OverloadError) Unwrap() error { return e.Err }

// UnreachableError reports that every attempt at a request failed at
// the transport level — no HTTP reply at all. It is what a caller sees
// when the server is down, unresolvable, or unroutable; tsgtime -serve
// turns it into its "server unreachable" exit.
type UnreachableError struct {
	URL      string // the service base URL
	Attempts int    // connection attempts made (1 + retries)
	Err      error  // the last transport error
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("server unreachable after %d attempts: %s (%v)", e.Attempts, e.URL, e.Err)
}

func (e *UnreachableError) Unwrap() error { return e.Err }

// Client speaks the analysis-service protocol.
//
// Resilience defaults: requests time out (30s unless overridden) and
// failed attempts are retried with jittered exponential backoff —
// transport errors and 503 overload sheds only, honouring the server's
// Retry-After hint. Every protocol call is safe to retry: queries are
// read-only, uploads are idempotent by content, and edits are stamped
// with a per-client sequence number the server deduplicates, so a
// retried edit whose original was applied-but-unacknowledged applies
// exactly once. Once attempts are exhausted, pure connection failures
// surface as *UnreachableError.
type Client struct {
	base    string
	hc      *http.Client
	retries int // attempts after the first
	backoff time.Duration
	maxWait time.Duration

	// Edit idempotency: a process-unique client id plus a monotonic
	// sequence stamp on every Edit/Reset.
	clientID string
	seq      atomic.Uint64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, test doubles). Its Timeout is respected as given.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds each individual request attempt (default 30s;
// 0 disables the per-attempt timeout).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// WithRetries sets how many times a failed attempt is retried
// (default 3; 0 disables retries).
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff tunes the retry backoff: full-jitter exponential from
// base, capped at max (defaults 100ms / 2s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// RetryPolicy bundles the retry knobs for callers that budget per-hop
// behavior explicitly — the cluster router runs its backends with a
// much tighter policy than an end client, because it does its own
// replica failover above the transport and a slow retry against a dead
// node just delays that failover.
//
// The zero value is the tightest budget: no retries at all
// (MaxRetries 0 means every attempt is also the last), with the
// default backoff windows (zero BackoffBase/BackoffCap keep the
// client's 100ms base and 2s cap — they only matter once MaxRetries
// is raised).
type RetryPolicy struct {
	// MaxRetries is how many times a failed attempt is retried
	// (0 = never retry; the Client default is 3).
	MaxRetries int
	// BackoffBase seeds the full-jitter exponential backoff
	// (0 keeps the default 100ms).
	BackoffBase time.Duration
	// BackoffCap bounds a single backoff wait (0 keeps the default 2s).
	BackoffCap time.Duration
}

// WithRetryPolicy applies a RetryPolicy wholesale. Unlike WithRetries
// it treats MaxRetries 0 as "no retries", so a zero-value policy is a
// usable tight-budget configuration, not a no-op.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) {
		c.retries = p.MaxRetries
		if p.BackoffBase > 0 {
			c.backoff = p.BackoffBase
		}
		if p.BackoffCap > 0 {
			c.maxWait = p.BackoffCap
		}
	}
}

// New returns a client of the service at baseURL (e.g.
// "http://127.0.0.1:7436").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
		maxWait: 2 * time.Second,
	}
	var id [6]byte
	if _, err := crand.Read(id[:]); err == nil {
		c.clientID = "cli-" + hex.EncodeToString(id[:])
	} else {
		c.clientID = fmt.Sprintf("cli-pid-%d", time.Now().UnixNano())
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ClientID returns the idempotency id this client stamps edits with.
func (c *Client) ClientID() string { return c.clientID }

// BaseURL returns the service base URL the client was built with
// (normalized: no trailing slash). The cluster router uses it to key
// per-node state by the same string it dials.
func (c *Client) BaseURL() string { return c.base }

// post sends a JSON request and decodes the JSON reply into out,
// retrying per the client's policy.
func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.roundTrip(ctx, http.MethodPost, path, "application/json", body, out)
}

// roundTrip runs one logical request through the retry loop. Each
// attempt rebuilds the http.Request (bodies must be fresh readers).
func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body []byte, out interface{}) error {
	var last error
	transportOnly := true
	attempts, sheds := 0, 0
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		err = c.doOnce(req, out)
		attempts++
		if err == nil {
			return nil
		}
		last = err
		retryable, isTransport, hint := classifyFailure(err)
		transportOnly = transportOnly && isTransport
		if retryable && !isTransport {
			sheds++
		}
		if !retryable || attempt >= c.retries {
			break
		}
		if err := c.sleepBackoff(ctx, attempt, hint); err != nil {
			break // context ended while waiting; report the request error
		}
	}
	if transportOnly {
		return &UnreachableError{URL: c.base, Attempts: attempts, Err: last}
	}
	// A terminal 503 means the overload outlived the retry budget:
	// surface it as a typed OverloadError (still unwrapping to the
	// *APIError underneath).
	var api *APIError
	if errors.As(last, &api) && api.Status == http.StatusServiceUnavailable {
		return &OverloadError{Attempts: attempts, Sheds: sheds, RetryAfter: api.RetryAfter, Err: api}
	}
	return last
}

// classifyFailure decides whether an attempt's failure is worth
// retrying: transport errors (no reply — the server may be mid-restart
// and the WAL guarantees committed state survives) and 503 sheds (the
// server explicitly asked for a backoff retry). Context expiry is the
// caller's deadline, never retried; other HTTP statuses are genuine
// answers (4xx: the request is wrong; 5xx: retrying the same bytes
// won't fix the server).
func classifyFailure(err error) (retryable, isTransport bool, retryAfter time.Duration) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, false, 0
	}
	var api *APIError
	if errors.As(err, &api) {
		if api.Status == http.StatusServiceUnavailable {
			return true, false, api.RetryAfter
		}
		return false, false, 0
	}
	return true, true, 0
}

// backoffDelay computes the wait before retrying `attempt`: the
// server's Retry-After hint when given (it knows its own recovery
// horizon better than any client-side guess), else full-jitter
// exponential — a uniformly random slice of base·2^attempt, capped —
// so a thundering herd of shed clients decorrelates instead of
// re-colliding.
func (c *Client) backoffDelay(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	d := c.backoff << uint(attempt)
	if d > c.maxWait || d <= 0 {
		d = c.maxWait
	}
	return time.Duration(mrand.Int63n(int64(d) + 1))
}

// sleepBackoff waits out backoffDelay, or returns early with the
// context's error if it expires first. A wait the context's deadline
// cannot outlive is refused up front: sleeping into a deadline burns
// the caller's remaining budget to produce a DeadlineExceeded that
// masks the real failure, when returning the last attempt's error
// immediately costs nothing.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, hint time.Duration) error {
	d := c.backoffDelay(attempt, hint)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce runs a single attempt.
func (c *Client) doOnce(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			e.Error = resp.Status
		}
		apiErr := &APIError{Status: resp.StatusCode, Msg: e.Error}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Upload sends a graph (raw .tsg body) and returns its fingerprint;
// subsequent queries can reference it with ByFingerprint.
func (c *Client) Upload(ctx context.Context, g *tsg.Graph) (*UploadResponse, error) {
	ref, err := ByGraph(g)
	if err != nil {
		return nil, err
	}
	return c.UploadText(ctx, ref.Graph)
}

// UploadDist uploads a graph together with its delay model (as
// ~dist/@group annotations), for served Monte-Carlo by fingerprint.
func (c *Client) UploadDist(ctx context.Context, g *tsg.Graph, m *tsg.DelayModel) (*UploadResponse, error) {
	ref, err := ByGraphDist(g, m)
	if err != nil {
		return nil, err
	}
	return c.UploadText(ctx, ref.Graph)
}

// UploadText uploads raw .tsg text. Retried attempts are idempotent:
// the fingerprint is a pure function of the content.
func (c *Client) UploadText(ctx context.Context, text string) (*UploadResponse, error) {
	var out UploadResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/graphs", "text/plain", []byte(text), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze returns the cycle time and critical cycles of the graph.
func (c *Client) Analyze(ctx context.Context, ref GraphRef) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", serve.AnalyzeRequest{GraphRef: ref}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Slacks returns the per-arc timing slacks at the graph's cycle time.
func (c *Client) Slacks(ctx context.Context, ref GraphRef) (*SlacksResponse, error) {
	var out SlacksResponse
	if err := c.post(ctx, "/v1/slacks", serve.SlacksRequest{GraphRef: ref}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WhatIf answers a batch of what-if queries — λ as if each arc's delay
// were replaced, all against the graph's baseline — in one round trip.
func (c *Client) WhatIf(ctx context.Context, ref GraphRef, queries []WhatIfQuery) (*WhatIfResponse, error) {
	var out WhatIfResponse
	if err := c.post(ctx, "/v1/whatif", serve.WhatIfRequest{GraphRef: ref, Queries: queries}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Edit commits delay edits to the graph's server-side engine session
// and returns λ at the new baseline — the edit→analyze loop in one
// round trip. Edits are durable and shared: every later query of
// every client of this fingerprint sees them, until further edits or
// a Reset. The server answers the post-edit analysis incrementally,
// re-propagating only the forward cone of the edited arcs through its
// retained simulation traces; critical cycles are deliberately not
// extracted (set serve.EditRequest.Criticals over the raw protocol,
// or follow up with Analyze, to get them).
// Every edit is stamped with the client's idempotency id and a fresh
// sequence number, so a retry of a response lost in transit (the edit
// may or may not have applied) re-commits under the same stamp and the
// server applies it exactly once.
func (c *Client) Edit(ctx context.Context, ref GraphRef, edits []DelayEdit) (*EditResponse, error) {
	var out EditResponse
	if err := c.post(ctx, "/v1/edit", serve.EditRequest{
		GraphRef: ref, Edits: edits, Client: c.clientID, Seq: c.seq.Add(1),
	}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EditStamped commits a fully specified edit request verbatim,
// preserving the request's own (client, seq) idempotency stamps
// instead of stamping with this client's. It is the pass-through
// primitive of the cluster router: an end client's stamp must reach
// every backend replica unchanged, so the server-side exactly-once
// dedupe works end to end across routing hops and replica replays.
// Callers own the stamp discipline (seq strictly increasing per
// client per fingerprint); Edit/Reset remain the safe default.
func (c *Client) EditStamped(ctx context.Context, req EditRequest) (*EditResponse, error) {
	var out EditResponse
	if err := c.post(ctx, "/v1/edit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reset restores the graph's server-side engine session to its
// compile-time delays, then applies the given edits (if any).
func (c *Client) Reset(ctx context.Context, ref GraphRef, edits []DelayEdit) (*EditResponse, error) {
	var out EditResponse
	if err := c.post(ctx, "/v1/edit", serve.EditRequest{
		GraphRef: ref, Edits: edits, Reset: true, Client: c.clientID, Seq: c.seq.Add(1),
	}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MC runs a served Monte-Carlo cycle-time analysis. req.GraphRef is
// overwritten with ref.
func (c *Client) MC(ctx context.Context, ref GraphRef, req MCRequest) (*MCResponse, error) {
	req.GraphRef = ref
	var out MCResponse
	if err := c.post(ctx, "/v1/mc", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fingerprint asks the server for the canonical content fingerprint
// of raw .tsg text without compiling an engine for it — the shard-
// placement primitive of the cluster router (POST /v1/fingerprint).
func (c *Client) Fingerprint(ctx context.Context, text string) (*FingerprintResponse, error) {
	var out FingerprintResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/fingerprint", "text/plain", []byte(text), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks service liveness.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/healthz", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
