// Package client is the Go client of the tsg analysis service
// (internal/serve, cmd/tsgserved): upload a Timed Signal Graph once,
// then issue analyze / slacks / batched what-if / Monte-Carlo queries
// by fingerprint, sharing the server's compiled engine with every
// other client of the same graph.
//
//	cl := client.New("http://127.0.0.1:7436")
//	up, err := cl.Upload(ctx, g)
//	res, err := cl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
//	fmt.Println(res.Lambda.Text)
//	wi, err := cl.WhatIf(ctx, client.ByFingerprint(up.Fingerprint),
//		[]client.WhatIfQuery{{Arc: 3, Delay: 5}, {Arc: 7, Delay: 2}})
//
// Upload is an optimisation, not a requirement: every query accepts
// client.ByGraph(g), which inlines the .tsg text — the server
// fingerprints it and still shares the engine. tsgtime -serve routes
// the CLI through this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"tsg"
	"tsg/internal/serve"
)

// Wire types, shared with the server so the protocol cannot drift.
type (
	// GraphRef references a graph by inline .tsg text or fingerprint.
	GraphRef = serve.GraphRef
	// Lambda is a served cycle time (exact rational + float + text).
	Lambda = serve.Lambda
	// CriticalCycle is one served critical cycle, events by name.
	CriticalCycle = serve.CriticalCycle
	// AnalyzeResponse is the outcome of Analyze.
	AnalyzeResponse = serve.AnalyzeResponse
	// SlacksResponse is the outcome of Slacks.
	SlacksResponse = serve.SlacksResponse
	// ArcSlack is one served arc slack.
	ArcSlack = serve.ArcSlack
	// WhatIfQuery is one delay assignment of a batched what-if.
	WhatIfQuery = serve.WhatIfQuery
	// WhatIfResponse is the outcome of WhatIf.
	WhatIfResponse = serve.WhatIfResponse
	// EngineStats mirrors the serving engine's cumulative counters.
	EngineStats = serve.EngineStats
	// MCRequest tunes a served Monte-Carlo run.
	MCRequest = serve.MCRequest
	// MCResponse is the outcome of MC.
	MCResponse = serve.MCResponse
	// DelayEdit is one committed delay assignment of an Edit.
	DelayEdit = serve.DelayEdit
	// EditResponse is the outcome of Edit.
	EditResponse = serve.EditResponse
	// UploadResponse is the outcome of Upload.
	UploadResponse = serve.UploadResponse
	// HealthResponse is the outcome of Health.
	HealthResponse = serve.HealthResponse
)

// ByGraph references a query's graph by inline .tsg text.
func ByGraph(g *tsg.Graph) (GraphRef, error) {
	var b bytes.Buffer
	if err := tsg.WriteGraph(&b, g); err != nil {
		return GraphRef{}, err
	}
	return GraphRef{Graph: b.String()}, nil
}

// ByGraphDist references a graph with its delay model inlined, so
// served Monte-Carlo runs sample the model's distributions.
func ByGraphDist(g *tsg.Graph, m *tsg.DelayModel) (GraphRef, error) {
	var b bytes.Buffer
	if err := tsg.WriteGraphDist(&b, g, m); err != nil {
		return GraphRef{}, err
	}
	return GraphRef{Graph: b.String()}, nil
}

// ByFingerprint references a previously uploaded graph. For graphs
// without distribution annotations the fingerprint equals
// tsg.Fingerprint(g), so it can be computed without any upload.
func ByFingerprint(fp string) GraphRef { return GraphRef{Fingerprint: fp} }

// ArcMap translates between a local graph's declaration-order arc
// indices and the canonical wire indices of the protocol. The
// fingerprint is invariant under arc declaration order, so clients
// holding the same graph in different orders share one server engine;
// the canonical rank (tsg.CanonicalArcOrder) is the index space they
// also share. Build one ArcMap per graph and translate query arcs
// with ToWire and response arcs (slacks, critical cycles, criticality)
// with FromWire. A graph serialized and parsed in the same order maps
// identically on both sides, so the translation is exact.
type ArcMap struct {
	toWire   []int // local arc index -> canonical rank
	fromWire []int // canonical rank -> local arc index
}

// NewArcMap builds the wire translation for a local graph.
func NewArcMap(g *tsg.Graph) *ArcMap {
	fromWire := tsg.CanonicalArcOrder(g)
	toWire := make([]int, len(fromWire))
	for k, i := range fromWire {
		toWire[i] = k
	}
	return &ArcMap{toWire: toWire, fromWire: fromWire}
}

// ToWire converts a local arc index to its canonical wire index.
func (m *ArcMap) ToWire(local int) int { return m.toWire[local] }

// FromWire converts a canonical wire index to the local arc index.
func (m *ArcMap) FromWire(wire int) int { return m.fromWire[wire] }

// NumArcs returns the number of arcs the map covers.
func (m *ArcMap) NumArcs() int { return len(m.toWire) }

// APIError is a non-2xx service reply.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // the server's error message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tsg service: %s (HTTP %d)", e.Msg, e.Status)
}

// Client speaks the analysis-service protocol.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client of the service at baseURL (e.g.
// "http://127.0.0.1:7436").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// post sends a JSON request and decodes the JSON reply into out.
func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			e.Error = resp.Status
		}
		return &APIError{Status: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Upload sends a graph (raw .tsg body) and returns its fingerprint;
// subsequent queries can reference it with ByFingerprint.
func (c *Client) Upload(ctx context.Context, g *tsg.Graph) (*UploadResponse, error) {
	ref, err := ByGraph(g)
	if err != nil {
		return nil, err
	}
	return c.UploadText(ctx, ref.Graph)
}

// UploadDist uploads a graph together with its delay model (as
// ~dist/@group annotations), for served Monte-Carlo by fingerprint.
func (c *Client) UploadDist(ctx context.Context, g *tsg.Graph, m *tsg.DelayModel) (*UploadResponse, error) {
	ref, err := ByGraphDist(g, m)
	if err != nil {
		return nil, err
	}
	return c.UploadText(ctx, ref.Graph)
}

// UploadText uploads raw .tsg text.
func (c *Client) UploadText(ctx context.Context, text string) (*UploadResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/graphs", strings.NewReader(text))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	var out UploadResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze returns the cycle time and critical cycles of the graph.
func (c *Client) Analyze(ctx context.Context, ref GraphRef) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", serve.AnalyzeRequest{GraphRef: ref}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Slacks returns the per-arc timing slacks at the graph's cycle time.
func (c *Client) Slacks(ctx context.Context, ref GraphRef) (*SlacksResponse, error) {
	var out SlacksResponse
	if err := c.post(ctx, "/v1/slacks", serve.SlacksRequest{GraphRef: ref}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WhatIf answers a batch of what-if queries — λ as if each arc's delay
// were replaced, all against the graph's baseline — in one round trip.
func (c *Client) WhatIf(ctx context.Context, ref GraphRef, queries []WhatIfQuery) (*WhatIfResponse, error) {
	var out WhatIfResponse
	if err := c.post(ctx, "/v1/whatif", serve.WhatIfRequest{GraphRef: ref, Queries: queries}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Edit commits delay edits to the graph's server-side engine session
// and returns λ at the new baseline — the edit→analyze loop in one
// round trip. Edits are durable and shared: every later query of
// every client of this fingerprint sees them, until further edits or
// a Reset. The server answers the post-edit analysis incrementally,
// re-propagating only the forward cone of the edited arcs through its
// retained simulation traces; critical cycles are deliberately not
// extracted (set serve.EditRequest.Criticals over the raw protocol,
// or follow up with Analyze, to get them).
func (c *Client) Edit(ctx context.Context, ref GraphRef, edits []DelayEdit) (*EditResponse, error) {
	var out EditResponse
	if err := c.post(ctx, "/v1/edit", serve.EditRequest{GraphRef: ref, Edits: edits}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reset restores the graph's server-side engine session to its
// compile-time delays, then applies the given edits (if any).
func (c *Client) Reset(ctx context.Context, ref GraphRef, edits []DelayEdit) (*EditResponse, error) {
	var out EditResponse
	if err := c.post(ctx, "/v1/edit", serve.EditRequest{GraphRef: ref, Edits: edits, Reset: true}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MC runs a served Monte-Carlo cycle-time analysis. req.GraphRef is
// overwritten with ref.
func (c *Client) MC(ctx context.Context, ref GraphRef, req MCRequest) (*MCResponse, error) {
	req.GraphRef = ref
	var out MCResponse
	if err := c.post(ctx, "/v1/mc", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks service liveness.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out HealthResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
