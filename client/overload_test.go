package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tsg/client"
	"tsg/internal/serve"
)

// TestOverloadErrorAndRetryAfterHonored pins the shed contract end to
// end: a server that always sheds with Retry-After: 1 must (a) make
// the retry loop actually wait out the hint instead of its own tiny
// backoff, and (b) surface a typed *OverloadError that still unwraps
// to the *APIError underneath.
func TestOverloadErrorAndRetryAfterHonored(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "overloaded: retry"})
	}))
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetries(1),
		// Microsecond backoff: any real wait must come from the hint.
		client.WithBackoff(time.Microsecond, 2*time.Microsecond))

	start := time.Now()
	_, err := cl.Analyze(context.Background(), client.ByFingerprint("deadbeef"))
	elapsed := time.Since(start)

	var ov *client.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError, got %T: %v", err, err)
	}
	if ov.Attempts != 2 || ov.Sheds != 2 {
		t.Fatalf("attempts=%d sheds=%d, want 2/2: %v", ov.Attempts, ov.Sheds, ov)
	}
	if ov.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ov.RetryAfter)
	}
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusServiceUnavailable {
		t.Fatalf("OverloadError must unwrap to the 503 *APIError, got %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
	// One retry gap, hinted at 1s. Jittered-exponential alone would be
	// microseconds; honouring the header means we slept ~1s.
	if elapsed < 900*time.Millisecond {
		t.Fatalf("elapsed %v: Retry-After hint was not honoured", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("elapsed %v: waited far beyond the hint", elapsed)
	}
}

// TestOverloadErrorAbsentOnRecovery checks a request that eventually
// succeeds, or fails for non-overload reasons, never wears the
// OverloadError type.
func TestOverloadErrorAbsentOnRecovery(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "no such graph"})
	}))
	t.Cleanup(srv.Close)

	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithRetries(2))
	_, err := cl.Analyze(context.Background(), client.ByFingerprint("missing"))
	var ov *client.OverloadError
	if errors.As(err, &ov) {
		t.Fatalf("404 must not classify as overload: %v", err)
	}
	var api *client.APIError
	if !errors.As(err, &api) || api.Status != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
}
