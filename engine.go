package tsg

import (
	"context"

	"tsg/internal/cycletime"
)

// This file exposes the compile-once / query-many session layer. The
// one-shot functions (Analyze, Slacks, Sensitivity, AnalyzeBounds)
// rebuild the compiled form on every call; an Engine keeps it alive so
// heavy what-if traffic — the designer's edit-evaluate loop of §I —
// pays a delay refresh per query instead of a recompile.
//
//	e, err := tsg.NewEngine(g)
//	res, err := e.Analyze()              // compiled once, cached
//	slacks, err := e.Slacks()            // certified by the simulation
//	lam, err := e.Sensitivity(arc, 5)    // fast path when within slack
//	lams, err := e.SensitivitySweep(...) // many what-ifs, worker pool
//	err = e.SetDelay(arc, 2)             // commit an edit, O(1)
//
// See examples/whatif for the full bottleneck-hunting loop.

// Engine is a compiled analysis session: one graph compilation serving
// arbitrarily many analyses, slack reports, what-if sensitivities,
// sweeps and interval bounds, with in-place delay edits between
// queries. An Engine is safe for concurrent use under a
// readers/writer session lock: queries answered from the cached
// certificate run fully in parallel, while SetDelay commits (and
// anything that must simulate or mutate session state) take the lock
// exclusively — the discipline that lets the serving layer
// (internal/serve, cmd/tsgserved) share one engine across thousands
// of clients. Graph() exposes the engine's graph view, Stats() its
// query counters, and SizeHint() the estimated resident bytes the
// serving cache uses for cost accounting.
type Engine = cycletime.Engine

// EngineStats is a snapshot of an engine's query counters (full
// analyses run vs. queries answered from the slack fast path vs. the
// what-if rows).
type EngineStats = cycletime.EngineStats

// WhatIf is one delay assignment of a sensitivity sweep: "what would λ
// be if Arc's delay were Delay".
type WhatIf = cycletime.WhatIf

// NewEngine compiles an analysis session for the graph with default
// options (border-set cut, b periods).
func NewEngine(g *Graph) (*Engine, error) { return cycletime.NewEngine(g) }

// NewEngineOpts compiles an analysis session with explicit options
// (custom cut set, period override, scheduling).
func NewEngineOpts(g *Graph, opts AnalysisOptions) (*Engine, error) {
	return cycletime.NewEngineOpts(g, opts)
}

// NewEngineOptsCtx is NewEngineOpts with a context: a tracer attached
// to ctx (internal/obs) records the compile as an engine.compile span,
// and the engine's *Ctx query methods (AnalyzeCtx, CycleTimeCtx, ...)
// continue the span tree down to the kernel phases. With a plain
// context it behaves exactly like NewEngineOpts.
func NewEngineOptsCtx(ctx context.Context, g *Graph, opts AnalysisOptions) (*Engine, error) {
	return cycletime.NewEngineOptsCtx(ctx, g, opts)
}
