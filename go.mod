module tsg

go 1.24
