package tsg

import (
	"io"
	"os"

	"tsg/internal/cycletime"
	"tsg/internal/dist"
	"tsg/internal/netlist"
)

// This file exposes the statistical timing subsystem: delay
// distributions, the per-arc DelayModel, and the Monte-Carlo analyses
// (distributional λ and slack distributions) that run on an Engine's
// compiled kernel. The paper's algorithm takes fixed delays; here the
// delays become distributions — the question the statistical-timing
// literature asks — and the compile-once session layer is what makes
// sampling cheap: every sample is an in-place delay refresh plus one
// pass-1 analysis on a worker's cloned schedule, never a re-Build or
// re-Compile.
//
//	model := tsg.NewDelayModel(g)                  // all-point: MC == Analyze
//	d, _ := tsg.DistUniform(0.9*nominal, 1.1*nominal)
//	model.SetArc(arc, d)                           // make one arc uncertain
//	model.Correlate(a1, a2, a3)                    // common process variation
//	res, err := e.AnalyzeMC(model, tsg.MCOptions{
//		Samples: 4096, Quantiles: []float64{0.5, 0.95, 0.99},
//		Criticality: true, Tol: 0.01,
//	})
//	// res.Mean, res.Quantiles, res.Criticality[arc] ∈ [0, 1]
//
// See examples/montecarlo for criticality-ranked bottleneck hunting
// under uncertainty, and the .tsg format's ~uniform(lo,hi) arc
// annotations (ReadGraphDist/WriteGraphDist) for persisting models.

// Dist is one arc-delay distribution (point, uniform, truncated normal,
// triangular, or discrete) with a closed-form quantile function.
type Dist = dist.Dist

// DelayModel assigns a distribution to every arc of a graph plus
// optional correlation groups; it is the input to AnalyzeMC/SlacksMC.
type DelayModel = dist.Model

// MCOptions tunes the Monte-Carlo analyses (sample budget, seed,
// quantiles, convergence tolerance, criticality, workers).
type MCOptions = cycletime.MCOptions

// MCResult is the outcome of a Monte-Carlo cycle-time analysis: λ
// mean/variance/min/max, quantile estimates, and per-arc criticality.
type MCResult = cycletime.MCResult

// QuantileEstimate is one estimated λ quantile with its confidence
// half-width.
type QuantileEstimate = cycletime.QuantileEstimate

// ArcSlackStats summarises one arc's slack distribution across the
// Monte-Carlo samples.
type ArcSlackStats = cycletime.ArcSlackStats

// DistPoint returns the degenerate distribution: a certain delay.
func DistPoint(v float64) (Dist, error) { return dist.Point(v) }

// DistUniform returns the uniform distribution on [lo, hi].
func DistUniform(lo, hi float64) (Dist, error) { return dist.Uniform(lo, hi) }

// DistNormal returns a normal distribution truncated to
// [max(0, mean−4σ), mean+4σ].
func DistNormal(mean, sigma float64) (Dist, error) { return dist.Normal(mean, sigma) }

// DistNormalTrunc returns a normal distribution truncated to [lo, hi].
func DistNormalTrunc(mean, sigma, lo, hi float64) (Dist, error) {
	return dist.NormalTrunc(mean, sigma, lo, hi)
}

// DistTriangular returns the triangular distribution on [lo, hi] with
// the given mode.
func DistTriangular(lo, mode, hi float64) (Dist, error) { return dist.Triangular(lo, mode, hi) }

// DistDiscrete returns the empirical distribution taking values[i] with
// probability weights[i]/Σweights.
func DistDiscrete(values, weights []float64) (Dist, error) { return dist.Discrete(values, weights) }

// ParseDist reads the textual distribution syntax used by the .tsg
// format's ~ annotations: uniform(lo,hi), normal(mean,sigma[,lo,hi]),
// tri(lo,mode,hi), choice(v:w,...), point(v).
func ParseDist(s string) (Dist, error) { return dist.Parse(s) }

// NewDelayModel returns the deterministic delay model of the graph:
// every arc a point distribution at its current delay. Monte-Carlo over
// it reproduces the fixed-delay analysis exactly.
func NewDelayModel(g *Graph) *DelayModel {
	m, err := dist.NewModel(nominalDelays(g))
	if err != nil {
		// Unreachable: validated graphs have non-negative delays.
		panic("tsg: delay model over validated graph: " + err.Error())
	}
	return m
}

// JitterUniformModel returns the uniform ±frac jitter model over the
// graph's delays: arc i ~ uniform((1−frac)·d, (1+frac)·d). Its supports
// match AnalyzeBounds(Jitter(frac)) exactly, so the interval analysis
// brackets every Monte-Carlo estimate under this model.
func JitterUniformModel(g *Graph, frac float64) (*DelayModel, error) {
	return dist.JitterUniform(nominalDelays(g), frac)
}

// JitterNormalModel is JitterUniformModel with truncated-normal mass
// concentrated at the nominal delay, on the same ±frac supports.
func JitterNormalModel(g *Graph, frac float64) (*DelayModel, error) {
	return dist.JitterNormal(nominalDelays(g), frac)
}

func nominalDelays(g *Graph) []float64 {
	nominal := make([]float64, g.NumArcs())
	for i := range nominal {
		nominal[i] = g.Arc(i).Delay
	}
	return nominal
}

// AnalyzeMC runs a one-shot Monte-Carlo cycle-time analysis (compile,
// sample, discard). Sessions mixing Monte-Carlo with other queries
// should hold an Engine and call Engine.AnalyzeMC.
func AnalyzeMC(g *Graph, m *DelayModel, opts MCOptions) (*MCResult, error) {
	return cycletime.AnalyzeMC(g, m, opts)
}

// SlacksMC runs a one-shot Monte-Carlo slack-distribution analysis,
// returning per-arc slack statistics over the repetitive core alongside
// the λ statistics of the same run.
func SlacksMC(g *Graph, m *DelayModel, opts MCOptions) ([]ArcSlackStats, *MCResult, error) {
	return cycletime.SlacksMC(g, m, opts)
}

// ReadGraphDist parses a .tsg file together with its optional delay
// annotations (~uniform(lo,hi)-style distributions and @group
// correlation tags on arc lines). Files without annotations yield the
// deterministic all-point model.
func ReadGraphDist(r io.Reader) (*Graph, *DelayModel, error) { return netlist.ReadTSGDist(r) }

// WriteGraphDist serialises a graph in .tsg format with the model's
// non-point distributions and correlation groups as arc annotations;
// ReadGraphDist round-trips the result.
func WriteGraphDist(w io.Writer, g *Graph, m *DelayModel) error {
	return netlist.WriteTSGDist(w, g, m)
}

// LoadGraphDist reads an annotated .tsg file from disk.
func LoadGraphDist(path string) (*Graph, *DelayModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadGraphDist(f)
}

// SaveGraphDist writes an annotated .tsg file to disk.
func SaveGraphDist(path string, g *Graph, m *DelayModel) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGraphDist(f, g, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
