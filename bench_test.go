// Benchmarks regenerating every table and figure of the paper (one
// bench per artefact; see BENCHMARKS.md for the experiment index, how
// to record results, and the per-PR performance trajectory). Run with
//
//	go test -bench=. -benchmem
package tsg_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"tsg"
	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/exp"
	"tsg/internal/gen"
	"tsg/internal/hier"
	"tsg/internal/maxplus"
	"tsg/internal/mcr"
	"tsg/internal/timesim"
)

// runExp benches a full experiment from the harness (output discarded).
func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 1 -----------------------------------------------------------

func BenchmarkFig1cTimingDiagram(b *testing.B) {
	g := gen.Oscillator()
	for i := 0; i < b.N; i++ {
		tr, err := timesim.Run(g, timesim.Options{Periods: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Diagram().Render(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1dInitiatedDiagram(b *testing.B) {
	g := gen.Oscillator()
	origin := g.MustEvent("a+")
	for i := 0; i < b.N; i++ {
		tr, err := timesim.RunFrom(g, origin, timesim.Options{Periods: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Diagram().Render(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Examples 3-7 ------------------------------------------------------

func BenchmarkExample3Simulation(b *testing.B) {
	g := gen.Oscillator()
	for i := 0; i < b.N; i++ {
		if _, err := timesim.Run(g, timesim.Options{Periods: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample4Initiated(b *testing.B) {
	g := gen.Oscillator()
	origin := g.MustEvent("b+")
	for i := 0; i < b.N; i++ {
		if _, err := timesim.RunFrom(g, origin, timesim.Options{Periods: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample5CycleOracle(b *testing.B) {
	g := gen.Oscillator()
	for i := 0; i < b.N; i++ {
		if _, _, err := cycles.MaxRatio(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample7CutSets(b *testing.B) {
	g := gen.Oscillator()
	for i := 0; i < b.N; i++ {
		if _, err := g.AllMinimumCutSets(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4 ------------------------------------------------------------

func BenchmarkFig4Asymptotics(b *testing.B) {
	runExp(b, "FIG4")
}

// --- §VIII tables ------------------------------------------------------

func BenchmarkTableVIIICOscillator(b *testing.B) {
	g := gen.Oscillator()
	for i := 0; i < b.N; i++ {
		if _, err := cycletime.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVIIIDMullerRing measures the full §VIII.D flow: gate
// level -> extraction -> cycle-time analysis.
func BenchmarkTableVIIIDMullerRing(b *testing.B) {
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := tsg.AnalyzeCircuit(c, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r := res.CycleTime.Normalize(); r.Num != 20 || r.Den != 3 {
			b.Fatalf("λ = %v, want 20/3", res.CycleTime)
		}
	}
}

// BenchmarkTableVIIIDAnalysisOnly isolates the analysis step on the
// extracted ring graph.
func BenchmarkTableVIIIDAnalysisOnly(b *testing.B) {
	g, err := gen.MullerRing(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycletime.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VIII.B stack performance -----------------------------------------

// BenchmarkStack66Events is the paper's performance claim: the analysis
// of a 66-event stack graph (74 ms on a 1994 DEC 5000).
func BenchmarkStack66Events(b *testing.B) {
	g, err := gen.Stack(31)
	if err != nil {
		b.Fatal(err)
	}
	if g.NumEvents() != 66 {
		b.Fatalf("stack has %d events, want 66", g.NumEvents())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycletime.Analyze(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VII complexity ----------------------------------------------------

// BenchmarkComplexitySweepM: runtime versus m at fixed b (linear law).
func BenchmarkComplexitySweepM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1000, 2000, 4000, 8000} {
		g, err := gen.RandomLive(rng, gen.RandomOptions{Events: n, Border: 4, ExtraArcs: n, MaxDelay: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", g.NumArcs()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cycletime.Analyze(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComplexitySweepB: runtime versus b at fixed n, m (quadratic law).
func BenchmarkComplexitySweepB(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, border := range []int{2, 4, 8, 16, 32} {
		g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 3000, Border: border, ExtraArcs: 3000, MaxDelay: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("b=%d", border), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cycletime.Analyze(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §I baselines --------------------------------------------------------

func benchmarkAlgos(b *testing.B, g *tsg.Graph) {
	b.Run("NielsenKishinevsky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycletime.Analyze(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Karp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Karp(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Howard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Howard(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Lawler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Lawler(g, 1e-9); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBaselineRing5(b *testing.B) {
	g, err := gen.MullerRing(5)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkAlgos(b, g)
	b.Run("Oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cycles.MaxRatio(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBaselineRandom2000(b *testing.B) {
	benchmarkAlgos(b, random2000(b))
}

// --- extraction ----------------------------------------------------------

// BenchmarkExtractRing measures the TRASPEC-substitute extraction alone.
func BenchmarkExtractRing(b *testing.B) {
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsg.ExtractGraph(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §2) --------------------------------------------

// BenchmarkAblationCutSet compares the border-set analysis (b
// simulations) against the minimum-cut-set analysis (k simulations,
// same b-period depth) on a stack where k ≈ b/2.
func BenchmarkAblationCutSet(b *testing.B) {
	g, err := gen.Stack(13)
	if err != nil {
		b.Fatal(err)
	}
	min, err := g.MinimumCutSet()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("border", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycletime.Analyze(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("minimum-cut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: min}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallel compares serial and parallel simulation
// scheduling on the b ≈ n worst case (gains require multiple CPUs).
func BenchmarkAblationParallel(b *testing.B) {
	g, err := gen.Stack(31)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{Serial: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{Parallel: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- PR 2: engine sessions (compile once, answer many) -------------------

// random2000 returns the BenchmarkBaselineRandom2000 workload: 2000
// events, b = 8, ~4000 arcs, integer delays.
func random2000(b *testing.B) *tsg.Graph {
	b.Helper()
	g, err := gen.RandomLive(rand.New(rand.NewSource(31)),
		gen.RandomOptions{Events: 2000, Border: 8, ExtraArcs: 2000, MaxDelay: 16})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSweepRandom2000 is the PR 2 headline: a full-arc ×1.5
// sensitivity sweep over the Random2000 workload. One op is the whole
// m-candidate sweep — EngineSweep includes the session compile and the
// slack certification, so the comparison against the per-arc one-shot
// Sensitivity loop is end-to-end.
func BenchmarkSweepRandom2000(b *testing.B) {
	g := random2000(b)
	cands := make([]tsg.WhatIf, g.NumArcs())
	for i := range cands {
		cands[i] = tsg.WhatIf{Arc: i, Delay: g.Arc(i).Delay * 1.5}
	}
	b.Run("EngineSweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := tsg.NewEngine(g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.SensitivitySweep(cands); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SensitivityLoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				if _, err := tsg.Sensitivity(g, c.Arc, c.Delay); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkWhatIfRandom2000 measures the per-query cost of single
// what-if queries rotating through the arcs: an engine session (slack
// fast path, in-place delay refresh) versus the one-shot Sensitivity
// (graph copy + recompile + full analysis every call).
func BenchmarkWhatIfRandom2000(b *testing.B) {
	g := random2000(b)
	b.Run("Engine", func(b *testing.B) {
		e, err := tsg.NewEngine(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Slacks(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arc := i % g.NumArcs()
			if _, err := e.Sensitivity(arc, g.Arc(arc).Delay*1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OneShot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			arc := i % g.NumArcs()
			if _, err := tsg.Sensitivity(g, arc, g.Arc(arc).Delay*1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEditAnalyzeRandom2000 measures one committed single-arc
// edit plus λ re-analysis — the edit→analyze loop of the INCR
// experiment: the incremental engine patches its retained traces
// through the edit's dirty cone, the NoIncremental engine re-simulates
// all b event-initiated runs.
func BenchmarkEditAnalyzeRandom2000(b *testing.B) {
	g := random2000(b)
	run := func(b *testing.B, e *tsg.Engine) {
		if _, err := e.Analyze(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arc := i % g.NumArcs()
			if err := e.SetDelay(arc, g.Arc(arc).Delay*1.5); err != nil {
				b.Fatal(err)
			}
			if _, err := e.CycleTime(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Incremental", func(b *testing.B) {
		e, err := tsg.NewEngine(g)
		if err != nil {
			b.Fatal(err)
		}
		run(b, e)
	})
	b.Run("FullResim", func(b *testing.B) {
		e, err := tsg.NewEngineOpts(g, tsg.AnalysisOptions{NoIncremental: true})
		if err != nil {
			b.Fatal(err)
		}
		run(b, e)
	})
}

// BenchmarkBoundsRandom2000 measures the interval-delay bounds, whose
// two extreme analyses now run concurrently on engine clones.
func BenchmarkBoundsRandom2000(b *testing.B) {
	g := random2000(b)
	lo, hi := tsg.Jitter(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsg.AnalyzeBounds(g, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 3: statistical timing (Monte-Carlo on the compiled kernel) -------

// rebuildGraph reconstructs a graph from scratch through the public
// builder with the given delays: the naive baseline's per-sample cost
// (re-Build, re-validate, then re-Compile inside Analyze).
func rebuildGraph(b *testing.B, g *tsg.Graph, delays []float64) *tsg.Graph {
	b.Helper()
	bld := tsg.NewGraph(g.Name())
	for e := 0; e < g.NumEvents(); e++ {
		ev := g.Event(tsg.EventID(e))
		if ev.Repetitive {
			bld.Event(ev.Name)
		} else {
			bld.Event(ev.Name, tsg.NonRepetitive())
		}
	}
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		var opts []tsg.ArcOption
		if arc.Marked {
			opts = append(opts, tsg.Marked())
		}
		if arc.Once {
			opts = append(opts, tsg.Once())
		}
		bld.Arc(g.Event(arc.From).Name, g.Event(arc.To).Name, delays[a], opts...)
	}
	ng, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return ng
}

// BenchmarkMCRandom2000 is the PR 3 headline: Monte-Carlo λ under ±10%
// uniform jitter on the Random2000 workload. One op is a whole
// MC_SAMPLES-sample run. CompiledKernel reuses the engine's compiled
// schedule per sample (batch kernel + upper-bound pruning);
// NaiveRebuild re-Builds the graph from scratch and re-Compiles
// (cycletime.Analyze) for every sample — the cost of Monte-Carlo
// without the statistical subsystem. The acceptance bar is >= 10x
// samples/sec between the two.
func BenchmarkMCRandom2000(b *testing.B) {
	g := random2000(b)
	model, err := tsg.JitterUniformModel(g, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	const mcSamples = 128
	b.Run("CompiledKernel", func(b *testing.B) {
		e, err := tsg.NewEngine(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.AnalyzeMC(model, tsg.MCOptions{Samples: mcSamples, Seed: 9}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(mcSamples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
	b.Run("NaiveRebuild", func(b *testing.B) {
		delays := make([]float64, g.NumArcs())
		for i := 0; i < b.N; i++ {
			for s := 0; s < mcSamples; s++ {
				model.SampleInto(9, uint64(s), delays)
				ng := rebuildGraph(b, g, delays)
				if _, err := cycletime.Analyze(ng); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(mcSamples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
}

// BenchmarkMCStack66 measures Monte-Carlo throughput on the paper's
// 66-event stack: λ-only (batch kernel), with criticality attribution
// (scalar pass + winner re-simulation), and slack distributions, serial
// vs. the worker pool.
func BenchmarkMCStack66(b *testing.B) {
	g, err := gen.Stack(31)
	if err != nil {
		b.Fatal(err)
	}
	model, err := tsg.JitterUniformModel(g, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := tsg.NewEngine(g)
	if err != nil {
		b.Fatal(err)
	}
	const mcSamples = 256
	run := func(b *testing.B, opts tsg.MCOptions) {
		opts.Samples = mcSamples
		opts.Seed = 9
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.AnalyzeMC(model, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(mcSamples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	}
	b.Run("LambdaSerial", func(b *testing.B) { run(b, tsg.MCOptions{Workers: 1}) })
	b.Run("LambdaPooled", func(b *testing.B) { run(b, tsg.MCOptions{}) })
	b.Run("Criticality", func(b *testing.B) { run(b, tsg.MCOptions{Criticality: true}) })
	b.Run("Slacks", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.SlacksMC(model, tsg.MCOptions{Samples: 64, Seed: 9}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(64*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
}

// BenchmarkMaxPlusEigenvalue measures the (max,+) spectral route to the
// cycle time (token matrix construction + Karp eigenvalue).
func BenchmarkMaxPlusEigenvalue(b *testing.B) {
	g, err := gen.MullerRing(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := maxplus.FromGraph(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Eigenvalue(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifySemimodularity measures the exhaustive state-space
// check on the five-stage ring (160 states).
func BenchmarkVerifySemimodularity(b *testing.B) {
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsg.VerifyCircuit(c, tsg.VerifyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 7: hierarchical compression + the memory-bounded kernel ----------

// BenchmarkFlatPipeGrid100k compares the two pass-1 layouts on a
// 10^5-event pipegrid: the full per-period trace slab against the
// two-row rolling window (results are bit-identical; the window trades
// the O(n·periods) slab for O(n)). LambdaOnly matches how the SCALE
// experiment runs the flat reference at this size.
func BenchmarkFlatPipeGrid100k(b *testing.B) {
	g, err := gen.PipeGridSized(100_000, 16, 4, 7003)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		wb   int64
	}{{"slab", -1}, {"window", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{
					WindowBytes: mode.wb, LambdaOnly: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHierPipeGrid100k is the PR 7 headline: compress the
// 10^5-event pipegrid to its boundary skeleton, analyze the compressed
// graph, and expand the λ-winners back to concrete flat cycles. One op
// is the whole pipeline (Compress + kernel + expansion), the unit the
// SCALE experiment gates against the flat reference.
func BenchmarkHierPipeGrid100k(b *testing.B) {
	g, err := gen.PipeGridSized(100_000, 16, 4, 7003)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := hier.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		if r.Stats.Fallback {
			b.Fatal("unexpected flat fallback")
		}
	}
}

// BenchmarkScaleExperiment regenerates the full scalability-wall sweep
// (10^3..10^6 events, hier vs flat λ bit-equality and per-row heap
// budget gates included).
func BenchmarkScaleExperiment(b *testing.B) {
	runExp(b, "SCALE")
}

// BenchmarkClusterExperiment runs the full distributed-tier proof:
// 3 backends + router, sharding and bit-identical replica convergence,
// the 2.5x aggregate-throughput gate under the per-node capacity
// model, and the kill/restart zero-failure cycle.
func BenchmarkClusterExperiment(b *testing.B) {
	runExp(b, "CLUSTER")
}
